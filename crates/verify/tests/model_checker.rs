//! Self-tests for the model checker: it must find planted bugs (with
//! replayable, minimized schedules), prove their absence in fixed code, and
//! behave as plain `std` passthrough outside an execution.

use std::sync::Arc;

use xwq_verify::sync::{AtomicUsize, Condvar, Mutex, Ordering};
use xwq_verify::{explore, Config, FailureKind, Schedule};

/// Two racy read-modify-write increments (load, then store). The canonical
/// lost-update bug: needs one preemption between a load and its store.
fn racy_double_increment() {
    let n = Arc::new(AtomicUsize::new(0));
    let n2 = Arc::clone(&n);
    let t = xwq_verify::thread::spawn(move || {
        let v = n2.load(Ordering::SeqCst);
        n2.store(v + 1, Ordering::SeqCst);
    });
    let v = n.load(Ordering::SeqCst);
    n.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_lost_update_and_seed_replays_deterministically() {
    let report = explore(&Config::default(), racy_double_increment);
    let failure = report.failure.expect("checker must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );

    // The printed seed replays the exact failing schedule: a single
    // execution, same failure, twice in a row.
    let seed = failure.schedule.seed();
    for _ in 0..2 {
        let replay = explore(
            &Config {
                replay: Some(Schedule::parse(&seed)),
                ..Config::default()
            },
            racy_double_increment,
        );
        assert_eq!(replay.schedules, 1);
        let rf = replay.failure.expect("replayed schedule must fail again");
        assert_eq!(rf.kind, FailureKind::Panic);
        assert!(rf.message.contains("lost update"), "{}", rf.message);
    }
}

#[test]
fn preemption_bound_sweep_gates_the_bug() {
    // Bound 0: every thread runs to completion once scheduled, so each
    // increment is effectively atomic — the full (bounded) tree is explored
    // and the assertion holds.
    let bound0 = explore(
        &Config {
            preemption_bound: Some(0),
            minimize: false,
            ..Config::default()
        },
        racy_double_increment,
    );
    assert!(bound0.complete, "bound-0 tree must be exhausted");
    assert!(
        bound0.failure.is_none(),
        "no lost update without preemption"
    );

    // Bounds 1 and 2 admit the load/store interleaving; the tree also grows.
    let mut prev_schedules = bound0.schedules;
    for bound in [1usize, 2] {
        let report = explore(
            &Config {
                preemption_bound: Some(bound),
                minimize: false,
                ..Config::default()
            },
            racy_double_increment,
        );
        let failure = report
            .failure
            .unwrap_or_else(|| panic!("bound {bound} must expose the race"));
        assert!(failure.message.contains("lost update"));
        assert!(
            report.schedules >= prev_schedules.min(2),
            "larger bound should not shrink the searched tree"
        );
        prev_schedules = report.schedules;
    }
}

#[test]
fn minimized_schedule_is_short_and_still_fails() {
    let report = explore(&Config::default(), racy_double_increment);
    let failure = report.failure.expect("must fail");
    // The race needs exactly one preemption; greedy prefix truncation should
    // land well under a dozen branch choices.
    assert!(
        failure.schedule.0.len() <= 8,
        "expected a minimized seed, got {} choices: {}",
        failure.schedule.0.len(),
        failure.schedule.seed()
    );
}

#[test]
fn detects_two_lock_cycle_deadlock() {
    let report = explore(&Config::default(), || {
        let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
        let l2 = Arc::clone(&locks);
        let t = xwq_verify::thread::spawn(move || {
            let _b = l2.1.lock().unwrap();
            let _a = l2.0.lock().unwrap();
        });
        let _a = locks.0.lock().unwrap();
        let _b = locks.1.lock().unwrap();
        drop(_b);
        drop(_a);
        t.join().unwrap();
    });
    let failure = report.failure.expect("must find the lock-order deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("blocked acquiring a mutex"),
        "{}",
        failure.message
    );

    // And the seed reproduces it.
    let replay = explore(
        &Config {
            replay: Some(failure.schedule.clone()),
            ..Config::default()
        },
        || {
            let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
            let l2 = Arc::clone(&locks);
            let t = xwq_verify::thread::spawn(move || {
                let _b = l2.1.lock().unwrap();
                let _a = l2.0.lock().unwrap();
            });
            let _a = locks.0.lock().unwrap();
            let _b = locks.1.lock().unwrap();
            drop(_b);
            drop(_a);
            t.join().unwrap();
        },
    );
    assert_eq!(replay.failure.map(|f| f.kind), Some(FailureKind::Deadlock));
}

#[test]
fn detects_lost_notify_as_deadlock() {
    use xwq_verify::sync::AtomicBool;
    // Predicate kept in an atomic and flipped *without* the mutex: the
    // store+notify can land in the window between the waiter's predicate
    // check (under the lock) and its wait — the notify sees no waiters and
    // the wakeup is lost. This is the bug class behind the PR 5 hang.
    let report = explore(&Config::default(), || {
        let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let s2 = Arc::clone(&state);
        let waiter = xwq_verify::thread::spawn(move || {
            let mut guard = s2.0.lock().unwrap();
            while !s2.2.load(Ordering::Acquire) {
                guard = s2.1.wait(guard).unwrap();
            }
            drop(guard);
        });
        state.2.store(true, Ordering::Release);
        state.1.notify_all();
        waiter.join().unwrap();
    });
    let failure = report.failure.expect("lost notify must be detected");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("lost notify"),
        "diagnostic should name the condvar wait: {}",
        failure.message
    );
}

#[test]
fn locked_predicate_flip_is_proved_sound() {
    // The corrected discipline — flip the predicate while holding the mutex,
    // notify after release — has no lost-wakeup window; the checker proves it
    // across every schedule in the bound.
    let report = explore(&Config::default(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let waiter = xwq_verify::thread::spawn(move || {
            let mut ready = s2.0.lock().unwrap();
            while !*ready {
                ready = s2.1.wait(ready).unwrap();
            }
        });
        {
            let mut ready = state.0.lock().unwrap();
            *ready = true;
        }
        state.1.notify_all();
        waiter.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn verified_correct_counter_explores_clean() {
    let report = explore(&Config::default(), || {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let t = xwq_verify::thread::spawn(move || {
            *n2.lock().unwrap() += 1;
        });
        *n.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.complete, "tree must be exhausted");
    assert!(report.failure.is_none());
    assert!(
        report.schedules > 1,
        "mutex acquisition order must actually branch"
    );
}

#[test]
fn passthrough_outside_model_execution() {
    // The shims behave as plain std primitives when no scheduler is active —
    // this is what keeps ordinary unit tests working under --cfg model.
    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let n = AtomicUsize::new(0);
    n.fetch_add(2, Ordering::SeqCst);
    assert_eq!(n.load(Ordering::SeqCst), 2);

    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let t = xwq_verify::thread::spawn(move || {
        let mut ready = p2.0.lock().unwrap();
        *ready = true;
        p2.1.notify_all();
    });
    let mut ready = pair.0.lock().unwrap();
    while !*ready {
        ready = pair.1.wait(ready).unwrap();
    }
    drop(ready);
    t.join().unwrap();
}

#[test]
fn wait_deadline_passthrough_times_out() {
    use std::time::{Duration, Instant};
    let m = Mutex::new(());
    let cv = Condvar::new();
    let guard = m.lock().unwrap();
    let start = Instant::now();
    let (_guard, timed_out) =
        xwq_verify::sync::wait_deadline(&cv, guard, Instant::now() + Duration::from_millis(20));
    assert!(timed_out);
    assert!(start.elapsed() >= Duration::from_millis(15));
}
