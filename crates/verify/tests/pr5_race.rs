//! Checker validation against a bug this repo actually shipped.
//!
//! PR 5's shard worker pool originally signalled shutdown by flipping an
//! `AtomicBool` and calling `notify_all()` *without holding the queue mutex*.
//! A worker that had just checked the flag (false) inside its critical
//! section — but not yet parked on the condvar — missed the notify and slept
//! forever; `Session::drop` then hung joining it. The fix (still in
//! `xwq_shard::session::ShardPool::begin_shutdown` today) flips the flag
//! while holding the queue mutex, closing the check→wait window.
//!
//! This test re-introduces the old logic in a faithful copy of the pool's
//! state machine and proves the model checker finds the hang — with a
//! printed, seed-replayable schedule — while the fixed discipline explores
//! clean. If the checker ever regresses into missing this class of bug,
//! this is the test that catches it.

use std::collections::VecDeque;
use std::sync::Arc;

use xwq_verify::sync::{AtomicBool, Condvar, Mutex, Ordering};
use xwq_verify::{explore, Config, FailureKind};

/// The shard pool's shared state, reduced to the parts the shutdown
/// handshake touches: a job queue, the park condvar, and the shutdown flag.
struct PoolShared {
    jobs: Mutex<VecDeque<u32>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn new() -> Arc<PoolShared> {
        Arc::new(PoolShared {
            jobs: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }
}

/// The worker park loop, structured exactly like
/// `xwq_shard::session::worker_loop`: claim under the lock, re-check the
/// shutdown flag, park on the condvar otherwise.
fn worker_loop(shared: &PoolShared, drained: &Mutex<Vec<u32>>) {
    let mut jobs = shared.jobs.lock().expect("pool lock");
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = jobs.pop_front() {
            drop(jobs);
            drained.lock().expect("drained lock").push(job);
            jobs = shared.jobs.lock().expect("pool lock");
            continue;
        }
        jobs = shared.work_cv.wait(jobs).expect("pool cv");
    }
}

/// PR 5's original shutdown: flag flip and notify race the worker's
/// check→park window because neither holds the queue mutex.
fn begin_shutdown_lock_free(shared: &PoolShared) {
    shared.shutdown.store(true, Ordering::Release);
    shared.work_cv.notify_all();
}

/// The shipped fix: the flag flips inside the queue mutex, so a worker is
/// either before its check (sees true) or already parked (gets the notify).
fn begin_shutdown_locked(shared: &PoolShared) {
    {
        let _jobs = shared.jobs.lock().expect("pool lock");
        shared.shutdown.store(true, Ordering::Release);
    }
    shared.work_cv.notify_all();
}

fn pool_scenario(shutdown: fn(&PoolShared)) {
    let shared = PoolShared::new();
    let drained = Arc::new(Mutex::new(Vec::new()));
    let (s2, d2) = (Arc::clone(&shared), Arc::clone(&drained));
    let worker = xwq_verify::thread::spawn(move || worker_loop(&s2, &d2));

    // Publish one job, as a live fan-out would.
    {
        let mut jobs = shared.jobs.lock().expect("pool lock");
        jobs.push_back(7);
    }
    shared.work_cv.notify_all();

    shutdown(&shared);
    worker.join().expect("worker must exit after shutdown");
}

#[test]
fn checker_finds_the_pr5_shutdown_hang() {
    let report = explore(&Config::default(), || {
        pool_scenario(begin_shutdown_lock_free)
    });
    let failure = report
        .failure
        .expect("the lock-free shutdown must hang under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("lost notify") || failure.message.contains("joining"),
        "diagnostic should implicate the parked worker: {}",
        failure.message
    );
    println!(
        "PR 5 race reproduced in {} schedules; minimized replay seed: \"{}\"",
        report.schedules,
        failure.schedule.seed()
    );

    // The printed seed replays the hang deterministically.
    let replay = explore(
        &Config {
            replay: Some(failure.schedule.clone()),
            ..Config::default()
        },
        || pool_scenario(begin_shutdown_lock_free),
    );
    assert_eq!(replay.schedules, 1, "replay runs exactly one schedule");
    assert_eq!(
        replay.failure.map(|f| f.kind),
        Some(FailureKind::Deadlock),
        "seed must reproduce the hang"
    );
}

#[test]
fn fixed_shutdown_discipline_explores_clean() {
    let report = explore(&Config::default(), || pool_scenario(begin_shutdown_locked));
    assert!(
        report.failure.is_none(),
        "fixed shutdown must not hang: {:?}",
        report.failure
    );
    assert!(
        report.complete,
        "schedule tree must be exhausted, not truncated"
    );
    println!(
        "fixed shutdown verified across {} schedules at preemption bound 2",
        report.schedules
    );
}
