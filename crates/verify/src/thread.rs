//! Model-aware replacements for `std::thread` spawning and joining.
//!
//! Outside a model execution these are thin wrappers over `std::thread`.
//! Inside one, a spawned thread is registered with the scheduler, starts
//! parked until first scheduled, and reports its completion (or panic) back
//! so the DFS can account for it; `join` becomes a modeled blocking edge.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{current, Ctx, Exec};

/// Model-aware [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    model: Option<(Arc<Exec>, usize)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            if let Some(ctx) = current() {
                exec.join_block(ctx.tid, *target);
            }
        }
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            // The modeled closure panicked; the payload was already routed to
            // the scheduler as the execution's failure.
            Ok(None) => Err(Box::new("modeled thread panicked".to_string())),
            Err(e) => Err(e),
        }
    }

    pub fn thread(&self) -> &std::thread::Thread {
        self.inner.thread()
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Model-aware [`std::thread::Builder`].
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
    stack_size: Option<usize>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn stack_size(mut self, size: usize) -> Builder {
        self.stack_size = Some(size);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(name) = &self.name {
            builder = builder.name(name.clone());
        }
        if let Some(size) = self.stack_size {
            builder = builder.stack_size(size);
        }
        match current() {
            None => {
                let inner = builder.spawn(move || Some(f()))?;
                Ok(JoinHandle { inner, model: None })
            }
            Some(ctx) => {
                let name = self.name.unwrap_or_else(|| "spawned".to_string());
                let tid = ctx.exec.register_thread(name);
                let exec = Arc::clone(&ctx.exec);
                let inner = builder.spawn(move || {
                    crate::sched::enter_thread(Ctx {
                        exec: Arc::clone(&exec),
                        tid,
                    });
                    exec.wait_for_token(tid);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    let panic_msg = match &result {
                        Ok(_) => None,
                        Err(p) => Some(crate::sched::payload_to_string(p.as_ref())),
                    };
                    exec.finish_thread(tid, panic_msg);
                    crate::sched::exit_thread();
                    result.ok()
                })?;
                // Yield so schedules where the child runs immediately are
                // part of the explored tree.
                ctx.exec.yield_point(ctx.tid);
                Ok(JoinHandle {
                    inner,
                    model: Some((ctx.exec, tid)),
                })
            }
        }
    }
}

/// Model-aware [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Model-aware [`std::thread::yield_now`]: a plain scheduler yield point.
pub fn yield_now() {
    match current() {
        None => std::thread::yield_now(),
        Some(ctx) => ctx.exec.yield_point(ctx.tid),
    }
}
