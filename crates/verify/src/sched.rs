//! The deterministic DFS scheduler behind [`check`](crate::check).
//!
//! # Execution model
//!
//! A *modeled* program runs on real OS threads, but at most one of them is
//! runnable at a time: the scheduler hands a token to exactly one thread and
//! every shim operation ([`crate::sync`], [`crate::thread`]) passes through a
//! *yield point* that may move the token elsewhere. Between two yield points a
//! thread runs uninterrupted, so the set of observable interleavings is exactly
//! the set of token-passing sequences — a finite tree of scheduling decisions
//! that depth-first search can enumerate exhaustively.
//!
//! Each decision point with more than one candidate is recorded as a
//! `(num_options, picked_index)` pair. The sequence of picked indices *is* the
//! schedule seed: printing it on failure and re-running with
//! [`Config::replay`] drives the program down the identical path. Candidate
//! lists are ordered current-thread-first, so index 0 always means "keep
//! running" and a default-filled suffix never introduces a preemption — which
//! is also what makes greedy prefix-truncation minimization work.
//!
//! # Preemption bounding
//!
//! An unforced switch away from a still-runnable thread counts against
//! [`Config::preemption_bound`]; once spent, the scheduler stays on the
//! current thread whenever it remains schedulable. Most real concurrency bugs
//! (including the PR 5 park/notify shutdown hang this crate was built to
//! catch) need only 1–2 preemptions, while the bound keeps the schedule tree
//! tractable. Replays must use the same bound as the original exploration:
//! the bound changes which decision points branch, and the seed indexes into
//! that exact branch sequence.
//!
//! # Failure handling
//!
//! A panic in any modeled thread records the first failure and lets the
//! remaining threads run to completion, so every OS thread is joined and no
//! state leaks. A deadlock (no schedulable thread while some are blocked) is
//! reported with a description of every blocked thread — a condvar waiter with
//! no runnable peer is precisely a lost notify — and the stuck OS threads are
//! abandoned (detached); they hold only that execution's object graph.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};

pub(crate) const NO_THREAD: usize = usize::MAX;

/// A replayable schedule: the picked-candidate indices at every branching
/// decision point, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule(pub Vec<u32>);

impl Schedule {
    /// Parses a seed printed by a failure report: comma-separated indices,
    /// e.g. `"0,2,1"`.
    pub fn parse(s: &str) -> Schedule {
        Schedule(
            s.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| t.parse::<u32>().expect("schedule seed: expected u32"))
                .collect(),
        )
    }

    /// The seed in its printable form (`"0,2,1"`).
    pub fn seed(&self) -> String {
        self.0
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.seed())
    }
}

/// Exploration parameters for [`check`](crate::check) / [`explore`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of unforced context switches per execution; `None`
    /// removes the bound (full exhaustive search). Defaults to 2, which
    /// covers every bug class this repo has actually shipped.
    pub preemption_bound: Option<usize>,
    /// Safety valve on the number of explored schedules. If hit, the report
    /// comes back with `complete == false` and no failure.
    pub max_schedules: usize,
    /// Greedily shrink a failing schedule to its shortest failing prefix
    /// before reporting.
    pub minimize: bool,
    /// Replay a single schedule instead of exploring. Must be paired with the
    /// same `preemption_bound` the seed was found under.
    pub replay: Option<Schedule>,
    /// Stack size for modeled OS threads (`None` = platform default). Small
    /// stacks keep abandoned deadlock executions cheap.
    pub stack_size: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 1_000_000,
            minimize: true,
            replay: None,
            stack_size: None,
        }
    }
}

/// What a failing execution looked like.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    /// Panic payload or a description of every blocked thread.
    pub message: String,
    /// Seed that reproduces the failure under the same `Config`.
    pub schedule: Schedule,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A modeled thread panicked (assertion failure in the harness).
    Panic,
    /// No schedulable thread remained while some were still blocked. A
    /// condvar waiter in this state is a lost notify.
    Deadlock,
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed (including minimization replays).
    pub schedules: usize,
    /// True iff the whole schedule tree within the bound was exhausted
    /// without hitting `max_schedules` or a failure.
    pub complete: bool,
    pub failure: Option<Failure>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting to acquire the mutex keyed by `.0`.
    BlockedMutex(usize),
    /// Waiting on the condvar keyed by `cv`. `wakeable` is set by a notify;
    /// `timed` waiters are additionally always schedulable via a spontaneous
    /// timeout firing.
    BlockedCondvar {
        cv: usize,
        wakeable: bool,
        timed: bool,
    },
    /// Waiting for thread `.0` to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    /// Number of candidates at this decision point; 0 = unknown (a
    /// user-supplied replay seed).
    n: u32,
    picked: u32,
}

#[derive(Default)]
struct MutexState {
    holder: Option<usize>,
}

#[derive(Default)]
struct CvState {
    next_ticket: u64,
    /// FIFO wait queue: (ticket, tid).
    waiters: Vec<(u64, usize)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Explore,
    Replay,
}

struct Inner {
    statuses: Vec<Status>,
    names: Vec<String>,
    active: usize,
    mutexes: HashMap<usize, MutexState>,
    condvars: HashMap<usize, CvState>,
    /// Per-thread flag: the wake a blocked-timed waiter just received was a
    /// timeout firing, not a notify.
    wake_timeout: Vec<bool>,
    // --- exploration state ---
    mode: Mode,
    /// Choices to follow before default-filling.
    prefix: Vec<Choice>,
    /// Choices actually taken this execution.
    trace: Vec<Choice>,
    cursor: usize,
    bound: Option<usize>,
    preemptions: usize,
    failure: Option<Failure>,
    done: bool,
}

pub(crate) struct Exec {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
}

/// Identity of the current modeled thread, carried in a thread-local.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Mark the calling OS thread as the given modeled thread (used by the
/// [`crate::thread`] spawn wrapper).
pub(crate) fn enter_thread(ctx: Ctx) {
    set_current(Some(ctx));
}

pub(crate) fn exit_thread() {
    set_current(None);
}

/// Suppress the default "thread panicked" stderr spew for modeled threads:
/// exploration *expects* failing schedules (that is the point), and the
/// failure is reported through [`Report`] instead.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

impl Inner {
    fn schedulable(&self, tid: usize) -> bool {
        match self.statuses[tid] {
            Status::Runnable => true,
            Status::BlockedMutex(key) => self.mutexes.get(&key).is_none_or(|m| m.holder.is_none()),
            Status::BlockedCondvar {
                wakeable, timed, ..
            } => wakeable || timed,
            Status::BlockedJoin(target) => matches!(self.statuses[target], Status::Finished),
            Status::Finished => false,
        }
    }

    /// Schedulable candidates, current-thread-first so that picked index 0
    /// always means "no preemption".
    fn candidates(&self, me: usize) -> Vec<usize> {
        let mut cands = Vec::new();
        if me != NO_THREAD && self.schedulable(me) {
            cands.push(me);
        }
        for tid in 0..self.statuses.len() {
            if tid != me && self.schedulable(tid) {
                cands.push(tid);
            }
        }
        cands
    }

    /// Consume one decision: follow the prefix while it lasts, then
    /// default-fill with index 0. Only branching points (n > 1) are recorded.
    fn decide(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let pick = if self.cursor < self.prefix.len() {
            let c = self.prefix[self.cursor];
            if self.mode == Mode::Explore {
                debug_assert!(
                    c.n as usize == n,
                    "nondeterministic harness: decision point {} had {} candidates, now {n}",
                    self.cursor,
                    c.n,
                );
            }
            (c.picked as usize).min(n - 1)
        } else {
            0
        };
        self.trace.push(Choice {
            n: n as u32,
            picked: pick as u32,
        });
        self.cursor += 1;
        pick
    }

    fn schedule_seed(&self) -> Schedule {
        Schedule(self.trace.iter().map(|c| c.picked).collect())
    }

    fn describe_blocked(&self) -> String {
        let mut parts = Vec::new();
        for (tid, st) in self.statuses.iter().enumerate() {
            let what = match st {
                Status::Runnable => continue,
                Status::Finished => continue,
                Status::BlockedMutex(_) => "blocked acquiring a mutex".to_string(),
                Status::BlockedCondvar { timed, .. } => {
                    if *timed {
                        "waiting on a condvar (timed)".to_string()
                    } else {
                        "waiting on a condvar — possible lost notify".to_string()
                    }
                }
                Status::BlockedJoin(t) => {
                    format!("joining thread {} ('{}')", t, self.names[*t])
                }
            };
            parts.push(format!("thread {} ('{}') {}", tid, self.names[tid], what));
        }
        parts.join("; ")
    }
}

impl Exec {
    fn new(mode: Mode, prefix: Vec<Choice>, bound: Option<usize>) -> Arc<Exec> {
        Arc::new(Exec {
            inner: StdMutex::new(Inner {
                statuses: vec![Status::Runnable],
                names: vec!["main".to_string()],
                active: 0,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                wake_timeout: vec![false],
                mode,
                prefix,
                trace: Vec::new(),
                cursor: 0,
                bound,
                preemptions: 0,
                failure: None,
                done: false,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Pick and activate the next thread. Called with `me` already moved to
    /// its new status. Handles completion and deadlock detection.
    fn pick_next(&self, g: &mut Inner, me: usize) {
        let me_schedulable = me != NO_THREAD && g.schedulable(me);
        let mut cands = g.candidates(me);
        if cands.is_empty() {
            if g.statuses.iter().all(|s| matches!(s, Status::Finished)) {
                g.active = NO_THREAD;
                g.done = true;
                self.cv.notify_all();
                return;
            }
            if g.failure.is_none() {
                let schedule = g.schedule_seed();
                g.failure = Some(Failure {
                    kind: FailureKind::Deadlock,
                    message: format!("deadlock: {}", g.describe_blocked()),
                    schedule,
                });
            }
            g.active = NO_THREAD;
            g.done = true;
            self.cv.notify_all();
            return;
        }
        if me_schedulable && g.preemptions >= g.bound.unwrap_or(usize::MAX) {
            cands = vec![me];
        }
        let idx = g.decide(cands.len());
        let next = cands[idx];
        if me_schedulable && next != me {
            g.preemptions += 1;
        }
        if let Status::BlockedCondvar {
            wakeable, timed, ..
        } = g.statuses[next]
        {
            // When both a notify and a timeout could explain the wake, the
            // winner is itself a scheduling decision.
            let timed_out = if wakeable && timed {
                g.decide(2) == 1
            } else {
                !wakeable
            };
            g.wake_timeout[next] = timed_out;
        }
        g.active = next;
        self.cv.notify_all();
    }

    /// Move `me` to `status`, pick the next thread, and (unless `me` is
    /// finished) park until the token comes back.
    fn reschedule(&self, me: usize, status: Status) {
        let mut g = self.lock();
        g.statuses[me] = status;
        self.pick_next(&mut g, me);
        if matches!(status, Status::Finished) {
            return;
        }
        // A deadlocked execution never reactivates us: we stay parked and the
        // controller abandons this OS thread.
        while g.active != me {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Plain preemption opportunity (atomic ops, notifies, post-spawn).
    pub(crate) fn yield_point(&self, me: usize) {
        self.reschedule(me, Status::Runnable);
    }

    pub(crate) fn mutex_lock(&self, me: usize, key: usize) {
        self.yield_point(me);
        loop {
            {
                let mut g = self.lock();
                let m = g.mutexes.entry(key).or_default();
                if m.holder.is_none() {
                    m.holder = Some(me);
                    g.statuses[me] = Status::Runnable;
                    return;
                }
            }
            self.reschedule(me, Status::BlockedMutex(key));
        }
    }

    /// Releases are not yield points: the releasing thread's next shim op
    /// yields, which observes the same interleavings with half the tree.
    pub(crate) fn mutex_unlock(&self, _me: usize, key: usize) {
        let mut g = self.lock();
        g.mutexes.entry(key).or_default().holder = None;
    }

    /// Atomically release `mutex_key`, wait on `cv_key`, then re-acquire.
    /// Returns whether the wake was a timeout firing (always `false` for
    /// untimed waits).
    pub(crate) fn condvar_wait(
        &self,
        me: usize,
        cv_key: usize,
        mutex_key: usize,
        timed: bool,
    ) -> bool {
        // Yield *before* registering, with the model mutex still held: this
        // is the check→park window. The caller decided to wait based on a
        // predicate it just read; operations not ordered by the mutex (atomic
        // flag flips, notifies) can land right here, and a notify that does
        // so is lost — the bug class behind the PR 5 shutdown hang.
        self.yield_point(me);
        {
            let mut g = self.lock();
            let c = g.condvars.entry(cv_key).or_default();
            let ticket = c.next_ticket;
            c.next_ticket += 1;
            c.waiters.push((ticket, me));
            g.mutexes.entry(mutex_key).or_default().holder = None;
        }
        self.reschedule(
            me,
            Status::BlockedCondvar {
                cv: cv_key,
                wakeable: false,
                timed,
            },
        );
        let timed_out = {
            let mut g = self.lock();
            let t = g.wake_timeout[me];
            g.wake_timeout[me] = false;
            if let Some(c) = g.condvars.get_mut(&cv_key) {
                c.waiters.retain(|&(_, tid)| tid != me);
            }
            g.statuses[me] = Status::Runnable;
            t
        };
        // Re-acquire without the leading yield: being scheduled out of the
        // wait *was* the yield.
        loop {
            {
                let mut g = self.lock();
                let m = g.mutexes.entry(mutex_key).or_default();
                if m.holder.is_none() {
                    m.holder = Some(me);
                    g.statuses[me] = Status::Runnable;
                    break;
                }
            }
            self.reschedule(me, Status::BlockedMutex(mutex_key));
        }
        timed_out
    }

    pub(crate) fn notify_one(&self, me: usize, cv_key: usize) {
        self.yield_point(me);
        let mut g = self.lock();
        let pick = g.condvars.get(&cv_key).and_then(|c| {
            c.waiters
                .iter()
                .filter(|&&(_, tid)| {
                    matches!(
                        g.statuses[tid],
                        Status::BlockedCondvar {
                            wakeable: false,
                            ..
                        }
                    )
                })
                .min_by_key(|&&(ticket, _)| ticket)
                .map(|&(_, tid)| tid)
        });
        if let Some(tid) = pick {
            if let Status::BlockedCondvar { wakeable, .. } = &mut g.statuses[tid] {
                *wakeable = true;
            }
        }
    }

    pub(crate) fn notify_all(&self, me: usize, cv_key: usize) {
        self.yield_point(me);
        let mut g = self.lock();
        let waiters: Vec<usize> = g
            .condvars
            .get(&cv_key)
            .map(|c| c.waiters.iter().map(|&(_, tid)| tid).collect())
            .unwrap_or_default();
        for tid in waiters {
            if let Status::BlockedCondvar { wakeable, .. } = &mut g.statuses[tid] {
                *wakeable = true;
            }
        }
    }

    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut g = self.lock();
        let tid = g.statuses.len();
        g.statuses.push(Status::Runnable);
        g.names.push(name);
        g.wake_timeout.push(false);
        tid
    }

    /// First action of a freshly spawned modeled thread: park until scheduled.
    pub(crate) fn wait_for_token(&self, me: usize) {
        let mut g = self.lock();
        while g.active != me {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    pub(crate) fn join_block(&self, me: usize, target: usize) {
        loop {
            {
                let mut g = self.lock();
                if matches!(g.statuses[target], Status::Finished) {
                    g.statuses[me] = Status::Runnable;
                    return;
                }
            }
            self.reschedule(me, Status::BlockedJoin(target));
        }
    }

    /// Record an optional panic as the first failure, mark `me` finished, and
    /// hand the token onward.
    pub(crate) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        {
            let mut g = self.lock();
            if let Some(msg) = panic_msg {
                if g.failure.is_none() {
                    let schedule = g.schedule_seed();
                    let name = g.names[me].clone();
                    g.failure = Some(Failure {
                        kind: FailureKind::Panic,
                        message: format!("thread {me} ('{name}') panicked: {msg}"),
                        schedule,
                    });
                }
            }
        }
        self.reschedule(me, Status::Finished);
    }
}

pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ExecOutcome {
    trace: Vec<Choice>,
    failure: Option<Failure>,
}

/// Run the harness once under the given choice prefix.
fn run_once<F>(
    f: &Arc<F>,
    prefix: Vec<Choice>,
    mode: Mode,
    bound: Option<usize>,
    stack_size: Option<usize>,
) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Exec::new(mode, prefix, bound);
    let f2 = Arc::clone(f);
    let exec2 = Arc::clone(&exec);
    let mut builder = std::thread::Builder::new().name("xwq-model-main".to_string());
    if let Some(s) = stack_size {
        builder = builder.stack_size(s);
    }
    let handle = builder
        .spawn(move || {
            set_current(Some(Ctx {
                exec: Arc::clone(&exec2),
                tid: 0,
            }));
            let result = catch_unwind(AssertUnwindSafe(|| f2()));
            let panic_msg = result.err().map(|p| payload_to_string(p.as_ref()));
            exec2.finish_thread(0, panic_msg);
            set_current(None);
        })
        .expect("model checker: failed to spawn main thread");
    let (trace, failure) = {
        let mut g = exec.lock();
        while !g.done {
            g = exec.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        (g.trace.clone(), g.failure.take())
    };
    let deadlocked = matches!(
        failure,
        Some(Failure {
            kind: FailureKind::Deadlock,
            ..
        })
    );
    if deadlocked {
        // The blocked OS threads (possibly including main) can never make
        // progress; abandon them. They hold only this execution's objects.
        drop(handle);
    } else {
        let _ = handle.join();
    }
    ExecOutcome { trace, failure }
}

/// Shrink a failing schedule to its shortest failing prefix: the candidate
/// ordering makes default-fill "never preempt again", so the first prefix
/// length that still fails is the minimal seed in this family.
fn minimize<F>(f: &Arc<F>, original: Failure, config: &Config, schedules: &mut usize) -> Failure
where
    F: Fn() + Send + Sync + 'static,
{
    const BUDGET: usize = 64;
    let full = &original.schedule.0;
    for i in 0..full.len().min(BUDGET) {
        let prefix: Vec<Choice> = full[..i]
            .iter()
            .map(|&picked| Choice { n: 0, picked })
            .collect();
        let out = run_once(
            f,
            prefix,
            Mode::Replay,
            config.preemption_bound,
            config.stack_size,
        );
        *schedules += 1;
        if let Some(found) = out.failure {
            return Failure {
                kind: found.kind,
                message: found.message,
                schedule: Schedule(full[..i].to_vec()),
            };
        }
    }
    original
}

/// Explore every schedule of `f` within the bound (or replay one seed).
/// Returns instead of panicking; see [`check`](crate::check) for the
/// assert-style wrapper.
pub fn explore<F>(config: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    let f = Arc::new(f);
    let replay = config.replay.clone().or_else(|| {
        std::env::var("XWQ_MODEL_REPLAY")
            .ok()
            .map(|s| Schedule::parse(&s))
    });
    if let Some(seed) = replay {
        let prefix: Vec<Choice> = seed
            .0
            .iter()
            .map(|&picked| Choice { n: 0, picked })
            .collect();
        let out = run_once(
            &f,
            prefix,
            Mode::Replay,
            config.preemption_bound,
            config.stack_size,
        );
        return Report {
            schedules: 1,
            complete: false,
            failure: out.failure,
        };
    }
    let mut prefix: Vec<Choice> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let out = run_once(
            &f,
            prefix.clone(),
            Mode::Explore,
            config.preemption_bound,
            config.stack_size,
        );
        schedules += 1;
        if let Some(failure) = out.failure {
            let failure = if config.minimize {
                minimize(&f, failure, config, &mut schedules)
            } else {
                failure
            };
            return Report {
                schedules,
                complete: false,
                failure: Some(failure),
            };
        }
        // Backtrack: bump the deepest decision that still has an unexplored
        // sibling, dropping everything after it.
        let mut trace = out.trace;
        loop {
            match trace.last().copied() {
                None => {
                    return Report {
                        schedules,
                        complete: true,
                        failure: None,
                    }
                }
                Some(c) if c.picked + 1 < c.n => {
                    let last = trace.last_mut().unwrap();
                    last.picked += 1;
                    break;
                }
                Some(_) => {
                    trace.pop();
                }
            }
        }
        prefix = trace;
        if schedules >= config.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
    }
}

/// Explore every schedule of `f`; panic with a pretty, replayable report on
/// the first invariant violation or deadlock.
pub fn check<F>(name: &str, config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(&config, f);
    if let Some(fail) = &report.failure {
        panic!(
            "model check '{name}' failed after {} schedules ({:?})\n  {}\n  replay seed: \"{}\"\n  (reproduce with XWQ_MODEL_REPLAY=\"{}\" or Config {{ replay: Some(Schedule::parse(\"{}\")), .. }} under the same preemption_bound)",
            report.schedules,
            fail.kind,
            fail.message,
            fail.schedule.seed(),
            fail.schedule.seed(),
            fail.schedule.seed(),
        );
    }
    report
}
