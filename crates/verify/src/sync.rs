//! Drop-in `std::sync` shims driven by the model scheduler.
//!
//! Each type wraps the real `std` primitive. Outside a model execution
//! (no scheduler token on this thread) every operation passes straight
//! through to `std`, so a `--cfg model` build still runs ordinary unit tests
//! correctly. Inside [`check`](crate::check), operations additionally route
//! through the scheduler: acquires and atomic ops are yield points, condvar
//! waits park the modeled thread, and mutual exclusion is enforced by the
//! token — the inner `std` lock is then always uncontended.
//!
//! Deliberate simplifications, documented here once:
//!
//! * **No spurious wakeups.** A modeled condvar waiter resumes only via a
//!   notify or (for timed waits) a nondeterministic timeout firing. All
//!   production wait loops re-check their predicate, so a spurious wake
//!   cannot introduce behavior the modeled schedules miss.
//! * **No poisoning under the model.** A panicking schedule already fails the
//!   check; results are `Ok` so harness code using `.expect()` behaves the
//!   same on both paths.
//! * **Shim objects are keyed by address.** Harnesses must keep a primitive
//!   at a stable address (in an `Arc`, a struct field, or an unmoved local)
//!   for the duration of an execution — true of all production uses.

use std::sync::{LockResult, PoisonError};
use std::time::Instant;

pub use std::sync::atomic::Ordering;

use crate::sched::{current, Ctx};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware replacement for [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Holds the real `std` guard; releases it
/// before reporting the unlock to the scheduler.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<Ctx>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn key(&self) -> usize {
        self as *const Mutex<T> as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
            Some(ctx) => {
                ctx.exec.mutex_lock(ctx.tid, self.key());
                // The scheduler granted us the model lock, so the real one is
                // free: its guard is dropped before the model unlock.
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(ctx),
                })
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<'a, T> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        self.inner = None; // release the real lock first
        if let Some(ctx) = self.model.take() {
            ctx.exec.mutex_unlock(ctx.tid, self.lock.key());
        }
    }
}

impl<'a, T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Model-aware replacement for [`std::sync::Condvar`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn key(&self) -> usize {
        self as *const Condvar as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match guard.model.take() {
            None => {
                let std_guard = guard.inner.take().expect("guard taken");
                // `guard` now drops as a no-op.
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poisoned.into_inner()),
                        model: None,
                    })),
                }
            }
            Some(ctx) => {
                guard.inner = None; // release the real lock
                ctx.exec
                    .condvar_wait(ctx.tid, self.key(), lock.key(), false);
                let g = lock.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: Some(ctx),
                })
            }
        }
    }

    pub fn notify_one(&self) {
        match current() {
            None => self.inner.notify_one(),
            Some(ctx) => ctx.exec.notify_one(ctx.tid, self.key()),
        }
    }

    pub fn notify_all(&self) {
        match current() {
            None => self.inner.notify_all(),
            Some(ctx) => ctx.exec.notify_all(ctx.tid, self.key()),
        }
    }
}

/// Deadline wait: blocks until notified or `deadline` passes; returns the
/// reacquired guard and whether the wake was a timeout.
///
/// Under the model the timeout is a *scheduler choice* — both the
/// notified-first and timed-out-first orders are explored, including the
/// simultaneous case — so harness runs finish without real-time sleeps.
/// Production code must treat `timed_out == true` as advisory and re-check
/// its predicate, exactly as with `std::sync::Condvar::wait_timeout`.
///
/// Panics on a poisoned mutex (the callers' `.expect()` policy, hoisted).
pub fn wait_deadline<'a, T>(
    cv: &Condvar,
    mut guard: MutexGuard<'a, T>,
    deadline: Instant,
) -> (MutexGuard<'a, T>, bool) {
    let lock = guard.lock;
    match guard.model.take() {
        None => {
            let std_guard = guard.inner.take().expect("guard taken");
            let now = Instant::now();
            if now >= deadline {
                return (
                    MutexGuard {
                        lock,
                        inner: Some(std_guard),
                        model: None,
                    },
                    true,
                );
            }
            let (g, result) = cv
                .inner
                .wait_timeout(std_guard, deadline - now)
                .unwrap_or_else(|_| panic!("wait_deadline: mutex poisoned"));
            (
                MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                },
                result.timed_out() || Instant::now() >= deadline,
            )
        }
        Some(ctx) => {
            guard.inner = None;
            let timed_out = ctx.exec.condvar_wait(ctx.tid, cv.key(), lock.key(), true);
            let g = lock.inner.lock().unwrap_or_else(|p| p.into_inner());
            (
                MutexGuard {
                    lock,
                    inner: Some(g),
                    model: Some(ctx),
                },
                timed_out,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

fn model_yield() {
    if let Some(ctx) = current() {
        ctx.exec.yield_point(ctx.tid);
    }
}

macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-aware atomic: every operation is a scheduler yield point;
        /// the value itself lives in the real `std` atomic.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(value: $prim) -> $name {
                $name {
                    inner: <$std>::new(value),
                }
            }

            pub fn load(&self, order: Ordering) -> $prim {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's order.
                self.inner.load(order)
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's order.
                self.inner.store(value, order)
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's order.
                self.inner.swap(value, order)
            }

            pub fn compare_exchange(
                &self,
                currentv: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's orders.
                self.inner.compare_exchange(currentv, new, success, failure)
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

macro_rules! model_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's order.
                self.inner.fetch_add(value, order)
            }

            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                model_yield();
                // lint: allow(atomic-ordering) — forwards the caller's order.
                self.inner.fetch_sub(value, order)
            }
        }
    };
}

model_atomic_arith!(AtomicUsize, usize);
model_atomic_arith!(AtomicU64, u64);
model_atomic_arith!(AtomicU32, u32);

impl AtomicBool {
    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        model_yield();
        // lint: allow(atomic-ordering) — forwards the caller's order.
        self.inner.fetch_or(value, order)
    }

    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        model_yield();
        // lint: allow(atomic-ordering) — forwards the caller's order.
        self.inner.fetch_and(value, order)
    }
}
