//! `xwq-verify` — a dependency-free, loom-style concurrency model checker.
//!
//! The serving tier rests on three hand-rolled concurrency cores: the
//! condvar-parked per-shard worker pools, the ticketed-FIFO admission gate
//! with timeout tombstones, and the epoch-based artifact GC. Stress tests
//! sample a handful of schedules per run and miss rare interleavings — the
//! PR 5 park/notify shutdown hang shipped and survived a week of CI exactly
//! that way. This crate explores schedules *systematically* instead: the
//! program under test runs on real OS threads, but a deterministic scheduler
//! serializes them and depth-first-enumerates every interleaving up to a
//! configurable preemption bound.
//!
//! * [`check`] / [`explore`] — run a harness closure under every schedule;
//!   panics (invariant violations) and deadlocks / lost notifies are caught,
//!   minimized, and reported with a seed that [`Config::replay`] or the
//!   `XWQ_MODEL_REPLAY` env var replays deterministically.
//! * [`sync`] / [`thread`] — drop-in shims for the `std::sync` and
//!   `std::thread` subset the serving tier uses. Outside a model execution
//!   they pass straight through to `std`, so a `--cfg model` build of the
//!   workspace still runs its ordinary test suite unchanged; `crates/shard`
//!   and `crates/store` re-export them from `crate::sync` under `--cfg model`
//!   and plain `std::sync` otherwise.
//!
//! ```
//! use xwq_verify::{check, Config};
//! use xwq_verify::sync::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! // Two racing non-atomic increments: load, then store. The checker finds
//! // the lost update and prints a replayable schedule.
//! let report = xwq_verify::explore(&Config::default(), || {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = xwq_verify::thread::spawn(move || {
//!         let v = n2.load(Ordering::SeqCst);
//!         n2.store(v + 1, Ordering::SeqCst);
//!     });
//!     let v = n.load(Ordering::SeqCst);
//!     n.store(v + 1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
//! });
//! assert!(report.failure.is_some());
//! ```

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{check, explore, Config, Failure, FailureKind, Report, Schedule};
