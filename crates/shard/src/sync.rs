//! The crate's sync abstraction: `std::sync` in normal builds, the
//! [`xwq_verify`] model-checker shims under `--cfg model`.
//!
//! Everything that participates in a cross-thread *protocol* — the shard
//! pools' queue mutex + park condvar + shutdown flag, the fan-out latch and
//! result slots, the admission gate's state + condvar, the GC's epoch map —
//! must come from this module so that `RUSTFLAGS="--cfg model"` builds can
//! exhaustively model-check those protocols (see `crates/verify` and the
//! `model_` tests in this crate). In a normal build every name here is a
//! plain re-export of `std`, so the abstraction has zero runtime cost — a
//! unit test asserts the types are literally `std`'s.
//!
//! Deliberately *not* routed through this module:
//!
//! * **Monotonic statistics counters** (`admitted`, `waited`, `unlinked`,
//!   cache hit/miss tallies). They are race-benign — every touch is a single
//!   atomic RMW or load, no other state depends on their value — and each
//!   shim op is a scheduler yield point, so modeling them would multiply the
//!   schedule tree without adding any checkable behavior.
//! * **`Corpus`'s catalog `RwLock`** and other read-mostly registry locks.
//!   The fan-out read path takes them only for leaf lookups and never while
//!   blocking on a modeled primitive with a writer present.
//! * `Arc`, `OnceLock`, `Instant`: no blocking, nothing to model.

#[cfg(not(model))]
mod imp {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// Model-aware thread handles: plain `std::thread` here.
    pub mod thread {
        pub use std::thread::{spawn, yield_now, Builder, JoinHandle};
    }

    use std::time::Instant;

    /// Waits on `cv` until notified or `deadline` passes; returns the
    /// reacquired guard and whether the deadline had passed on wake. The
    /// flag is advisory — callers re-check their predicate, exactly as with
    /// `Condvar::wait_timeout`. Panics on a poisoned mutex.
    ///
    /// Exists so the model build can treat the timeout as a scheduler
    /// choice: under `--cfg model` this maps to
    /// [`xwq_verify::sync::wait_deadline`], which explores both the
    /// notified-first and timed-out-first orders without real-time sleeps.
    pub fn wait_deadline<'a, T>(
        cv: &Condvar,
        guard: MutexGuard<'a, T>,
        deadline: Instant,
    ) -> (MutexGuard<'a, T>, bool) {
        let now = Instant::now();
        if now >= deadline {
            return (guard, true);
        }
        let (guard, result) = cv
            .wait_timeout(guard, deadline - now)
            .unwrap_or_else(|_| panic!("wait_deadline: mutex poisoned"));
        (guard, result.timed_out() || Instant::now() >= deadline)
    }
}

#[cfg(model)]
mod imp {
    pub use xwq_verify::sync::{
        wait_deadline, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
    };

    /// Model-aware thread handles: scheduler-registered spawns and joins.
    pub mod thread {
        pub use xwq_verify::thread::{spawn, yield_now, Builder, JoinHandle};
    }
}

pub use imp::*;

#[cfg(all(test, not(model)))]
mod tests {
    use std::any::TypeId;

    /// The zero-cost claim, checked: outside `--cfg model` the re-exports
    /// are literally `std::sync`'s types, not wrappers.
    #[test]
    fn normal_build_reexports_are_plain_std() {
        assert_eq!(
            TypeId::of::<super::Mutex<u8>>(),
            TypeId::of::<std::sync::Mutex<u8>>()
        );
        assert_eq!(
            TypeId::of::<super::Condvar>(),
            TypeId::of::<std::sync::Condvar>()
        );
        assert_eq!(
            TypeId::of::<super::AtomicBool>(),
            TypeId::of::<std::sync::atomic::AtomicBool>()
        );
        assert_eq!(
            TypeId::of::<super::thread::Builder>(),
            TypeId::of::<std::thread::Builder>()
        );
    }
}
