//! The [`ShardedSession`]: corpus-wide query serving on per-shard pinned
//! worker pools.
//!
//! Layout: every corpus shard gets its own long-lived worker pool (the
//! condvar-parked design the single-document `Session` pool introduced)
//! **and** its own [`Session`] — so the compiled-query LRU, the memo
//! pools hanging off each `CompiledQuery`, and every worker's
//! [`EvalScratch`] are all confined to one shard by construction. A
//! worker thread is spawned *for* a shard, parks on that shard's condvar,
//! and only ever evaluates documents placed on that shard: shard→worker
//! affinity is structural, not advisory, which is exactly the handle a
//! future NUMA binding needs (pin the shard's workers to the node whose
//! memory holds the shard's mapped `.xwqi` pages).
//!
//! [`ShardedSession::query_corpus`] fans one query out over all (or a
//! subset of) documents: the caller groups the target documents by shard,
//! publishes one job per involved shard, and waits on a single corpus-wide
//! completion latch while each shard's workers claim documents from their
//! shard's atomic cursor. Results always come back merged in document-name
//! order, so the answer is byte-identical no matter how many shards or
//! workers served it.
//!
//! Concurrent callers pass through a **bounded admission queue** first: at
//! most `max_active` fan-outs run at once, at most `max_waiting` callers
//! park behind them, and everyone beyond that is rejected immediately with
//! [`CorpusError::Overloaded`] — under overload the corpus degrades by
//! shedding load, not by piling unbounded work onto the pools.

use crate::sync::{
    thread as sync_thread, wait_deadline, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex,
    Ordering,
};
use crate::{Corpus, CorpusError};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use xwq_core::{EvalScratch, EvalStats, Strategy};
use xwq_obs::{Counter, LatencyHisto, Registry};
use xwq_store::{CacheStats, QueryResponse, Session, SessionError};

/// The corpus-wide merged result slots, indexed by each document's
/// position in the name-ordered target list and shared by every shard's
/// job of one fan-out.
type ResultSlots = Arc<Mutex<Vec<Option<Result<QueryResponse, SessionError>>>>>;

/// One document's outcome within a corpus fan-out.
#[derive(Debug)]
pub struct DocOutcome {
    /// The document name (outcomes are merged in name order).
    pub doc: String,
    /// The shard that served it.
    pub shard: usize,
    /// The per-document response or error (a bad document never aborts
    /// the rest of the fan-out).
    pub result: Result<QueryResponse, SessionError>,
}

/// Admission-queue limits for concurrent [`ShardedSession::query_corpus`]
/// callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Fan-outs served concurrently (at least 1).
    pub max_active: usize,
    /// Callers allowed to wait behind them; one more is rejected.
    pub max_waiting: usize,
    /// How long a waiter may stay parked before giving up with
    /// [`CorpusError::Overloaded`]. `None` waits indefinitely. A timed-out
    /// waiter withdraws its ticket without stalling the FIFO queue behind
    /// it.
    pub timeout: Option<Duration>,
}

impl Default for AdmissionConfig {
    /// As many active fan-outs as the machine has cores, with a short
    /// bounded queue behind them and no wait deadline.
    fn default() -> Self {
        Self {
            max_active: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_waiting: 64,
            timeout: None,
        }
    }
}

/// Admission observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Callers admitted (immediately or after waiting).
    pub admitted: u64,
    /// Callers that had to wait for a slot before being admitted.
    pub waited: u64,
    /// Callers rejected because the wait queue was full.
    pub rejected: u64,
    /// Waiters that gave up when their admission deadline expired.
    pub timed_out: u64,
}

/// Tuning for a [`ShardedSession`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Long-lived workers pinned to each shard. `0` serves every fan-out
    /// on the calling thread (shard by shard, in order) — the serial
    /// reference mode.
    pub workers_per_shard: usize,
    /// Compiled-query LRU capacity of each shard's session.
    pub cache_capacity: usize,
    /// Admission-queue limits.
    pub admission: AdmissionConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            cache_capacity: xwq_store::DEFAULT_CACHE_CAPACITY,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A corpus-wide serving session: one pinned worker pool + one
/// compiled-query cache per shard, and a bounded admission queue in front.
pub struct ShardedSession {
    corpus: Arc<Corpus>,
    shards: Vec<ShardServer>,
    admission: Admission,
    workers_per_shard: usize,
    /// `xwq_corpus_fanout_latency_ns`: end-to-end fan-out wall time
    /// (admission wait included). Set by [`Self::enable_telemetry`].
    fanout_latency: OnceLock<Arc<LatencyHisto>>,
    /// Test-only slow-shard fixture: a hook every evaluation passes its
    /// document name through before running, so a test can make one
    /// shard's documents arbitrarily slow (or block them on a signal) and
    /// observe streaming emission ordering deterministically.
    #[cfg(test)]
    eval_gate: Mutex<Option<EvalGate>>,
}

/// See [`ShardedSession::eval_gate`].
#[cfg(test)]
type EvalGate = Arc<dyn Fn(&str) + Send + Sync>;

/// One shard's serving state.
struct ShardServer {
    /// The shard-local session: compiled-query LRU + store access. Its
    /// *own* internal pool is never engaged (this layer always calls
    /// [`Session::query_with_scratch`]), so the only threads touching a
    /// shard are the ones pinned to it.
    session: Arc<Session>,
    pool: ShardPool,
}

impl ShardedSession {
    /// A session over `corpus` with `workers_per_shard` pinned workers per
    /// shard and default cache/admission settings.
    pub fn new(corpus: Arc<Corpus>, workers_per_shard: usize) -> Self {
        Self::with_config(
            corpus,
            ShardedConfig {
                workers_per_shard,
                ..ShardedConfig::default()
            },
        )
    }

    /// A session with explicit tuning.
    pub fn with_config(corpus: Arc<Corpus>, config: ShardedConfig) -> Self {
        let shards = (0..corpus.shard_count())
            .map(|s| ShardServer {
                session: Arc::new(Session::with_cache_capacity(
                    Arc::clone(corpus.shard_store(s)),
                    config.cache_capacity,
                )),
                pool: ShardPool::new(s),
            })
            .collect();
        Self {
            corpus,
            shards,
            admission: Admission::new(config.admission),
            workers_per_shard: config.workers_per_shard,
            fanout_latency: OnceLock::new(),
            #[cfg(test)]
            eval_gate: Mutex::new(None),
        }
    }

    /// Wires the whole serving stack into a metrics [`Registry`]: each
    /// shard's session (latency histogram + cache counters, labelled
    /// `shard="<n>"`), each shard's job-queue wait histogram, the
    /// corpus-wide fan-out latency histogram, the admission gate's
    /// counters and wait histogram, and the corpus durability metrics
    /// (WAL commit latency, recovery counters, GC reclaim counter).
    /// Idempotent — only the first call takes effect; until called,
    /// serving skips all telemetry work.
    pub fn enable_telemetry(&self, registry: &Registry) {
        registry.describe(
            "xwq_corpus_fanout_latency_ns",
            "End-to-end corpus fan-out latency (admission wait included), nanoseconds",
        );
        registry.describe(
            "xwq_shard_queue_wait_ns",
            "Time a published shard job waited before its first worker claimed it, nanoseconds",
        );
        let _ = self
            .fanout_latency
            .set(registry.histo("xwq_corpus_fanout_latency_ns"));
        for (s, shard) in self.shards.iter().enumerate() {
            let label = s.to_string();
            shard
                .session
                .enable_telemetry(registry, &[("shard", &label)]);
            let _ = shard
                .pool
                .queue_wait
                .set(registry.histo_with("xwq_shard_queue_wait_ns", &[("shard", &label)]));
        }
        self.admission.enable_telemetry(registry);
        self.corpus.enable_telemetry(registry);
    }

    /// The corpus this session serves.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// Workers currently pinned to shard `s`.
    pub fn shard_workers(&self, s: usize) -> usize {
        self.shards[s].pool.worker_count()
    }

    /// Total live workers across all shards.
    pub fn total_workers(&self) -> usize {
        (0..self.shards.len()).map(|s| self.shard_workers(s)).sum()
    }

    /// Admission-queue counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Aggregated compiled-query cache counters across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.session.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.capacity += s.capacity;
        }
        total
    }

    /// Snapshots every compiled program the shard sessions hold into
    /// `.xwqp` sidecars next to each durable document's `.xwqi` artifact —
    /// execution history included, so the next open of this corpus starts
    /// warm *and* re-plans from observed visits (see
    /// [`xwq_store::Session::persist_plans`]). Best effort by design: a
    /// document that cannot be persisted (no cached programs, a vanished
    /// artifact) is skipped, never an error — this runs on server drain,
    /// which must not fail. Returns the number of programs persisted.
    /// No-op (0) for an in-memory corpus.
    pub fn persist_plans(&self) -> usize {
        let Some(dir) = self.corpus.dir() else {
            return 0;
        };
        // Pin the epoch so artifact GC cannot unlink a generation between
        // the catalog read and the sidecar write next to it.
        let _epoch = self.corpus.pin();
        let mut saved = 0;
        for (name, entry) in self.corpus.durable_entries() {
            if let Some(shard) = self.corpus.shard_of(&name) {
                saved += self.shards[shard]
                    .session
                    .persist_plans(&name, dir.join(&entry.file))
                    .unwrap_or(0);
            }
        }
        saved
    }

    /// Fans `query` out over **every** document in the corpus and merges
    /// the per-document outcomes in document-name order.
    pub fn query_corpus(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<Vec<DocOutcome>, CorpusError> {
        self.query_corpus_stats(query, strategy).map(|(out, _)| out)
    }

    /// [`Self::query_corpus`] plus merged evaluation totals across every
    /// document of the fan-out. Merge discipline: each pinned worker
    /// accumulates the stats of the documents *it* served and folds them
    /// into the fan-out total exactly once, at the corpus latch — so the
    /// total equals the sum over successful outcomes and the serial run,
    /// independent of worker count or claim order.
    pub fn query_corpus_stats(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<(Vec<DocOutcome>, EvalStats), CorpusError> {
        let targets = self.corpus.placements();
        self.run(query, strategy, targets)
    }

    /// [`Self::query_corpus`] restricted to a subset of document names
    /// (any order, duplicates collapsed; unknown names fail the whole call
    /// up front). Outcomes still come back in document-name order.
    pub fn query_docs(
        &self,
        query: &str,
        strategy: Strategy,
        docs: &[impl AsRef<str>],
    ) -> Result<Vec<DocOutcome>, CorpusError> {
        self.query_docs_stats(query, strategy, docs)
            .map(|(out, _)| out)
    }

    /// [`Self::query_docs`] plus merged evaluation totals (see
    /// [`Self::query_corpus_stats`]).
    pub fn query_docs_stats(
        &self,
        query: &str,
        strategy: Strategy,
        docs: &[impl AsRef<str>],
    ) -> Result<(Vec<DocOutcome>, EvalStats), CorpusError> {
        let mut names: Vec<&str> = docs.iter().map(AsRef::as_ref).collect();
        names.sort_unstable();
        names.dedup();
        let targets = names
            .into_iter()
            .map(|name| {
                self.corpus
                    .shard_of(name)
                    .map(|shard| (name.to_string(), shard))
                    .ok_or_else(|| CorpusError::UnknownDocument(name.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.run(query, strategy, targets)
    }

    /// Streaming [`Self::query_corpus_stats`]: instead of materializing
    /// the merged outcome vector, `sink` receives each [`DocOutcome`] in
    /// document-name order **as it completes** — the first document's
    /// outcome is delivered while later shards are still evaluating, so a
    /// network caller can start writing its response before the fan-out
    /// finishes. Emission is *ordered* incremental: outcome `i` is held
    /// until outcomes `0..i` have been emitted, so the concatenated stream
    /// is byte-identical to the non-streaming merge.
    ///
    /// The sink runs on the calling thread with no internal lock held; a
    /// slow sink never stalls shard workers, but it does extend how long
    /// this fan-out holds its admission permit. Returns the merged
    /// evaluation totals (identical to the non-streaming call).
    pub fn query_corpus_streaming(
        &self,
        query: &str,
        strategy: Strategy,
        mut sink: impl FnMut(DocOutcome),
    ) -> Result<EvalStats, CorpusError> {
        let targets = self.corpus.placements();
        self.run_with_sink(query, strategy, targets, Some(&mut sink))
            .map(|(_, stats)| stats)
    }

    /// Streaming [`Self::query_docs_stats`] (see
    /// [`Self::query_corpus_streaming`] for the emission contract).
    pub fn query_docs_streaming(
        &self,
        query: &str,
        strategy: Strategy,
        docs: &[impl AsRef<str>],
        mut sink: impl FnMut(DocOutcome),
    ) -> Result<EvalStats, CorpusError> {
        let mut names: Vec<&str> = docs.iter().map(AsRef::as_ref).collect();
        names.sort_unstable();
        names.dedup();
        let targets = names
            .into_iter()
            .map(|name| {
                self.corpus
                    .shard_of(name)
                    .map(|shard| (name.to_string(), shard))
                    .ok_or_else(|| CorpusError::UnknownDocument(name.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.run_with_sink(query, strategy, targets, Some(&mut sink))
            .map(|(_, stats)| stats)
    }

    /// The fan-out core. `targets` is `(name, shard)` in name order; the
    /// returned outcomes keep that order.
    fn run(
        &self,
        query: &str,
        strategy: Strategy,
        targets: Vec<(String, usize)>,
    ) -> Result<(Vec<DocOutcome>, EvalStats), CorpusError> {
        self.run_with_sink(query, strategy, targets, None)
    }

    /// [`Self::run`], optionally emitting each outcome through `sink` in
    /// document-name order *as it completes* instead of materializing the
    /// merged vector (streaming mode returns an empty outcome vec). The
    /// sink runs on the calling thread with no session lock held, so it
    /// may block (e.g. on a socket write) without stalling shard workers —
    /// though a blocked sink does hold this fan-out's admission permit.
    fn run_with_sink(
        &self,
        query: &str,
        strategy: Strategy,
        targets: Vec<(String, usize)>,
        mut sink: Option<&mut dyn FnMut(DocOutcome)>,
    ) -> Result<(Vec<DocOutcome>, EvalStats), CorpusError> {
        let fanout_histo = self.fanout_latency.get();
        let fanout_start = fanout_histo.map(|_| Instant::now());
        // Pin the artifact-GC epoch for the whole fan-out: a durable
        // replace/remove committed while this request runs cannot unlink
        // the generation it is reading until the guard drops.
        let _epoch = self.corpus.pin();
        let _permit = self.admission.enter()?;
        if targets.is_empty() {
            return Ok((Vec::new(), EvalStats::default()));
        }
        // Group the name-ordered targets by shard, remembering each
        // document's slot in the merged output.
        let mut per_shard: Vec<Vec<(usize, String)>> = vec![Vec::new(); self.shards.len()];
        for (slot, (name, shard)) in targets.iter().enumerate() {
            per_shard[*shard].push((slot, name.clone()));
        }
        let out: ResultSlots = Arc::new(Mutex::new((0..targets.len()).map(|_| None).collect()));
        let mut totals = EvalStats::default();
        // Next slot a streaming sink is owed (slots strictly below it have
        // been taken and emitted already).
        let mut emitted = 0usize;

        if self.workers_per_shard == 0 {
            // Serial reference mode: the caller serves each shard in
            // order. The scratch is per *shard*, mirroring the pooled
            // mode's invariant that evaluator state never crosses shards.
            for (s, docs) in per_shard.iter().enumerate() {
                if docs.is_empty() {
                    continue;
                }
                let mut scratch = EvalScratch::new();
                for (slot, name) in docs {
                    #[cfg(test)]
                    if let Some(gate) = self.eval_gate.lock().expect("gate poisoned").clone() {
                        gate(name);
                    }
                    let result = self.shards[s].session.query_with_scratch(
                        name,
                        query,
                        strategy,
                        &mut scratch,
                    );
                    if let Ok(resp) = &result {
                        totals.accumulate(&resp.stats);
                    }
                    out.lock().expect("corpus results poisoned")[*slot] = Some(result);
                    if let Some(sink) = sink.as_deref_mut() {
                        emitted = drain_ready(&targets, &out, emitted, sink);
                    }
                }
            }
        } else {
            let pending = Arc::new((Mutex::new(targets.len()), Condvar::new()));
            let shared_totals = Arc::new(Mutex::new(EvalStats::default()));
            let query: Arc<str> = Arc::from(query);
            for (s, docs) in per_shard.into_iter().enumerate() {
                if docs.is_empty() {
                    continue;
                }
                let limit = self.workers_per_shard.min(docs.len());
                let job =
                    ShardJob {
                        query: Arc::clone(&query),
                        strategy,
                        docs: Arc::new(docs),
                        cursor: Arc::new(AtomicUsize::new(0)),
                        participants: Arc::new(AtomicUsize::new(0)),
                        limit,
                        out: Arc::clone(&out),
                        pending: Arc::clone(&pending),
                        totals: Arc::clone(&shared_totals),
                        queue_wait: self.shards[s].pool.queue_wait.get().map(|histo| {
                            QueueWaitProbe {
                                published: Instant::now(),
                                recorded: Arc::new(AtomicBool::new(false)),
                                histo: Arc::clone(histo),
                            }
                        }),
                        #[cfg(test)]
                        gate: self.eval_gate.lock().expect("gate poisoned").clone(),
                    };
                self.shards[s]
                    .pool
                    .ensure_workers(limit, &self.shards[s].session);
                self.shards[s].pool.publish(job);
            }
            // The caller never works a shard itself in pooled mode — it
            // would break pinning — so it waits on the latch. A streaming
            // sink additionally drains the completed name-order prefix on
            // every latch tick: a document's slot is written before its
            // latch decrement fires (see `ShardJob::run_items`), so each
            // wakeup can only ever find *more* of the prefix complete.
            let (left, cv) = &*pending;
            let mut remaining = *left.lock().expect("corpus pending poisoned");
            loop {
                if let Some(sink) = sink.as_deref_mut() {
                    emitted = drain_ready(&targets, &out, emitted, sink);
                }
                if remaining == 0 {
                    break;
                }
                let guard = left.lock().expect("corpus pending poisoned");
                let guard = if *guard == remaining {
                    cv.wait(guard).expect("corpus pending poisoned")
                } else {
                    guard
                };
                remaining = *guard;
            }
            totals = *shared_totals.lock().expect("corpus totals poisoned");
        }

        let mut slots = out.lock().expect("corpus results poisoned");
        let outcomes = targets
            .into_iter()
            .zip(slots.iter_mut())
            .enumerate()
            .filter(|(slot, _)| *slot >= emitted)
            .map(|(_, ((doc, shard), slot))| DocOutcome {
                doc,
                shard,
                result: slot.take().expect("every document answered exactly once"),
            })
            .collect();
        if let (Some(histo), Some(start)) = (fanout_histo, fanout_start) {
            histo.record(start.elapsed().as_nanos() as u64);
        }
        Ok((outcomes, totals))
    }
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.pool.begin_shutdown();
        }
        for shard in &self.shards {
            shard.pool.join();
        }
    }
}

impl fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.shards.len())
            .field("docs", &self.corpus.len())
            .field("workers_per_shard", &self.workers_per_shard)
            .field("total_workers", &self.total_workers())
            .field("admission", &self.admission.stats())
            .finish()
    }
}

/// One published fan-out slice for one shard.
#[derive(Clone)]
struct ShardJob {
    query: Arc<str>,
    strategy: Strategy,
    /// `(merged-output slot, document name)` — only documents placed on
    /// this job's shard.
    docs: Arc<Vec<(usize, String)>>,
    cursor: Arc<AtomicUsize>,
    /// Workers that joined (capped by `limit` so an explicit worker count
    /// stays an upper bound even if the pool is larger).
    participants: Arc<AtomicUsize>,
    limit: usize,
    /// The corpus-wide merged output, shared by every shard's job.
    out: ResultSlots,
    /// The corpus-wide completion latch `(documents left, signal)`.
    pending: Arc<(Mutex<usize>, Condvar)>,
    /// The corpus-wide evaluation totals; each worker folds its local
    /// accumulation in once (see [`ShardJob::run_items`]).
    totals: Arc<Mutex<EvalStats>>,
    /// Queue-wait telemetry: the first claiming worker records how long
    /// the job sat published before any worker picked it up.
    queue_wait: Option<QueueWaitProbe>,
    /// Slow-shard test fixture (see [`ShardedSession::eval_gate`]).
    #[cfg(test)]
    gate: Option<EvalGate>,
}

/// Takes and emits the contiguous completed prefix of `out` starting at
/// `emitted`, returning the new high-water mark. Each slot is taken under
/// the lock but handed to the sink with no lock held.
fn drain_ready(
    targets: &[(String, usize)],
    out: &ResultSlots,
    mut emitted: usize,
    sink: &mut dyn FnMut(DocOutcome),
) -> usize {
    loop {
        let taken = {
            let mut slots = out.lock().expect("corpus results poisoned");
            if emitted < targets.len() && slots[emitted].is_some() {
                slots[emitted].take()
            } else {
                None
            }
        };
        let Some(result) = taken else {
            return emitted;
        };
        let (doc, shard) = targets[emitted].clone();
        sink(DocOutcome { doc, shard, result });
        emitted += 1;
    }
}

/// Telemetry carried on a published job (see [`ShardJob::queue_wait`]).
#[derive(Clone)]
struct QueueWaitProbe {
    published: Instant,
    recorded: Arc<AtomicBool>,
    histo: Arc<LatencyHisto>,
}

impl QueueWaitProbe {
    /// Records the publish→first-claim delay, once per job.
    fn record_first_claim(&self) {
        // AcqRel (upgraded from Relaxed): exactly-once already follows from
        // the swap's total modification order, but with Relaxed the winner's
        // histogram write was unordered with the flag — a thread observing
        // `recorded == true` could not assume the sample had landed, and the
        // `published` read had no edge of its own to the publisher beyond
        // the queue mutex this probe is documented not to rely on. AcqRel
        // makes "flag set ⇒ sample recorded" a real happens-before claim.
        if !self.recorded.swap(true, Ordering::AcqRel) {
            self.histo
                .record(self.published.elapsed().as_nanos() as u64);
        }
    }
}

impl ShardJob {
    /// Claims and answers this shard's documents until the cursor runs
    /// out. `session` is the *shard's* session; `scratch` the calling
    /// worker's lifetime scratch. Stats of the documents this worker
    /// answered are accumulated locally and folded into the fan-out
    /// totals exactly once, at the end.
    fn run_items(&self, session: &Session, scratch: &mut EvalScratch) {
        /// Decrements the corpus latch exactly once per claimed document,
        /// on the normal path and during unwinding — a panicking
        /// evaluation surfaces as an unanswered slot, never as a caller
        /// blocked forever.
        struct PendingGuard<'a>(&'a (Mutex<usize>, Condvar));
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                let (left, cv) = self.0;
                let mut left = left.lock().expect("corpus pending poisoned");
                *left -= 1;
                // Notify on *every* decrement, not just the last: a
                // streaming caller wakes per document to emit the completed
                // prefix, and the non-streaming caller just re-checks
                // `left > 0` on the spurious wakeups.
                cv.notify_all();
            }
        }
        let mut local = EvalStats::default();
        // A document's latch decrement is deferred until the *next* claim
        // (or the final merge): the caller must not wake before this
        // worker's stats are folded into the totals. A panic drops the
        // in-flight guard and still decrements every claimed document once.
        let mut answered: Option<PendingGuard> = None;
        loop {
            // Relaxed is sufficient: the fetch_add's total modification
            // order alone partitions indices uniquely among workers, and
            // every field a worker reads through the claimed index
            // (`docs`, `query`, the slot vec) was published to it by the
            // jobs-mutex release/acquire pair in publish→claim.
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.docs.len() {
                if local != EvalStats::default() {
                    self.totals
                        .lock()
                        .expect("corpus totals poisoned")
                        .accumulate(&local);
                }
                drop(answered);
                return;
            }
            drop(answered.replace(PendingGuard(&self.pending)));
            let (slot, name) = &self.docs[i];
            #[cfg(test)]
            if let Some(gate) = &self.gate {
                gate(name);
            }
            let result = session.query_with_scratch(name, &self.query, self.strategy, scratch);
            if let Ok(resp) = &result {
                local.accumulate(&resp.stats);
            }
            self.out.lock().expect("corpus results poisoned")[*slot] = Some(result);
        }
    }
}

/// A shard's persistent pinned pool: a job *queue* + condvar its workers
/// park on. The single-document session pool gets away with one job slot
/// because its caller participates in draining the cursor; here the
/// caller only waits on the latch (working a shard itself would break
/// pinning), so concurrent fan-outs admitted side by side must never
/// overwrite each other's jobs — each publish enqueues, and workers keep
/// claiming until the queue has nothing left for them. Scoped to one
/// shard: a worker spawned here can never observe another shard's jobs,
/// stores, or scratch.
struct ShardPool {
    shard: usize,
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<sync_thread::JoinHandle<()>>>,
    /// `xwq_shard_queue_wait_ns{shard=...}`: publish→first-claim delay of
    /// this shard's jobs. Set by [`ShardedSession::enable_telemetry`].
    queue_wait: OnceLock<Arc<LatencyHisto>>,
}

struct PoolShared {
    /// Published jobs awaiting workers, oldest first. Entries are pruned
    /// lazily during claim scans once fully claimed or saturated (running
    /// workers hold their own clones).
    jobs: Mutex<VecDeque<ShardJob>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// Joins the first job in the queue that still wants workers, pruning
/// entries that don't (cursor exhausted, or participant limit reached).
/// `None` means nothing to do — the caller should park.
fn claim(queue: &mut VecDeque<ShardJob>) -> Option<ShardJob> {
    // Every scanned entry is either joined (return) or pruned, so the
    // scan always looks at the queue head.
    while let Some(job) = queue.front() {
        // Relaxed is sufficient for both atomics here: the scan runs under
        // the jobs mutex, which carries every publish→claim edge, and the
        // values are monotonic counters used only as admission thresholds —
        // a stale-low `cursor` read merely lets one extra worker join and
        // find the cursor exhausted on its first claim, which the
        // `run_items` loop handles as the normal exit path.
        if job.cursor.load(Ordering::Relaxed) >= job.docs.len() {
            // Every document is claimed; whoever claimed them finishes
            // them. Nothing left for a new joiner.
            queue.pop_front();
            continue;
        }
        if job.participants.fetch_add(1, Ordering::Relaxed) < job.limit {
            return Some(job.clone());
        }
        // Saturated: the `limit` workers that joined drain the cursor to
        // exhaustion, so dropping the entry strands nothing (the explicit
        // worker count stays an upper bound).
        queue.pop_front();
    }
    None
}

impl ShardPool {
    fn new(shard: usize) -> Self {
        Self {
            shard,
            shared: Arc::new(PoolShared {
                jobs: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
            queue_wait: OnceLock::new(),
        }
    }

    fn worker_count(&self) -> usize {
        self.workers.lock().expect("shard pool poisoned").len()
    }

    /// Grows this shard's pool to at least `want` workers, lazily — a
    /// shard that never serves spawns none.
    fn ensure_workers(&self, want: usize, session: &Arc<Session>) {
        let mut workers = self.workers.lock().expect("shard pool poisoned");
        while workers.len() < want {
            let shared = Arc::clone(&self.shared);
            let session = Arc::clone(session);
            let handle = sync_thread::Builder::new()
                .name(format!("xwq-shard{}-w{}", self.shard, workers.len()))
                .spawn(move || worker_loop(shared, session))
                .expect("spawn shard worker");
            workers.push(handle);
        }
    }

    fn publish(&self, job: ShardJob) {
        let mut queue = self.shared.jobs.lock().expect("shard queue poisoned");
        queue.push_back(job);
        drop(queue);
        self.shared.work_cv.notify_all();
    }

    fn begin_shutdown(&self) {
        // Set the flag while holding the queue mutex: a worker checks
        // `shutdown` and parks under this same mutex, so flipping it
        // lock-free could land in the gap between a worker's check and
        // its park — the notify would hit nobody and the worker would
        // sleep through its own shutdown (hanging `join`).
        let guard = self.shared.jobs.lock().expect("shard queue poisoned");
        self.shared.shutdown.store(true, Ordering::Release);
        drop(guard);
        self.shared.work_cv.notify_all();
    }

    fn join(&self) {
        let workers = std::mem::take(&mut *self.workers.lock().expect("shard pool poisoned"));
        for w in workers {
            let _ = w.join();
        }
    }
}

/// A pinned worker: parks on its shard's condvar, keeps one
/// [`EvalScratch`] for its whole lifetime, and only ever touches its
/// shard's session.
fn worker_loop(shared: Arc<PoolShared>, session: Arc<Session>) {
    let mut scratch = EvalScratch::new();
    loop {
        let job = {
            let mut queue = shared.jobs.lock().expect("shard queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match claim(&mut queue) {
                    Some(job) => break job,
                    None => queue = shared.work_cv.wait(queue).expect("shard queue poisoned"),
                }
            }
        };
        if let Some(probe) = &job.queue_wait {
            probe.record_first_claim();
        }
        // Run the job to completion even if individual evaluations panic.
        // The caller never participates in pooled mode, so a worker dying
        // mid-job would strand the job's unclaimed documents and hang the
        // caller on the latch forever. Instead: the panicked document's
        // `PendingGuard` has already decremented the latch (its slot stays
        // unanswered, which the caller surfaces), the scratch is rebuilt
        // in case the unwind left it inconsistent, and the same worker —
        // still a counted participant — re-enters `run_items` to claim
        // the rest. Each retry consumes at least one cursor slot, so this
        // loop always terminates.
        while std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.run_items(&session, &mut scratch)
        }))
        .is_err()
        {
            scratch = EvalScratch::new();
        }
    }
}

/// The bounded admission queue: a **ticketed FIFO** gate with an explicit
/// waiting cap. Pure std (mutex + condvar), like the pools.
///
/// Every caller that cannot be admitted immediately takes a monotonically
/// increasing ticket; slots freed by departing permits go to the lowest
/// outstanding ticket, so waiters are admitted strictly in arrival order.
/// (The previous design woke waiters in whatever order the condvar chose,
/// so a late arrival could starve an early one under sustained load.) A
/// newly arriving caller never jumps the queue either: with any ticket
/// outstanding, a free slot belongs to the head waiter, and the arrival
/// takes the next ticket behind it.
struct Admission {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
    cv: Condvar,
    // The four counters below are monotonic statistics: every access is a
    // single Relaxed RMW or load, nothing branches on them inside the
    // protocol, and `stats()` promises only an eventually-consistent
    // snapshot — so Relaxed is sufficient for all of them (each site says
    // so by citing this invariant).
    admitted: AtomicU64,
    waited: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    telemetry: OnceLock<AdmissionTelemetry>,
}

/// The gate's ticket dispenser. Waiting callers are exactly the tickets
/// issued but neither served nor abandoned, so the parked-caller count
/// needs no separate bookkeeping (and cannot drift from the queue's true
/// state).
#[derive(Default)]
struct AdmissionState {
    /// Fan-outs currently holding a permit.
    active: usize,
    /// The next ticket to hand out.
    next_ticket: u64,
    /// The lowest ticket not yet admitted; `serving == next_ticket` means
    /// nobody is waiting.
    serving: u64,
    /// Tickets whose holders timed out while parked behind `serving`;
    /// skipped (and forgotten) when `serving` reaches them, so a
    /// withdrawal never stalls the FIFO order behind it.
    abandoned: BTreeSet<u64>,
}

impl AdmissionState {
    fn waiting(&self) -> usize {
        (self.next_ticket - self.serving) as usize - self.abandoned.len()
    }

    /// Moves `serving` past any abandoned successors. Must run after every
    /// `serving` advance so `serving` never rests on a ticket nobody holds
    /// (which would park the whole queue until its timeout).
    fn skip_abandoned(&mut self) {
        while self.abandoned.remove(&self.serving) {
            self.serving += 1;
        }
    }
}

/// Registry wiring for the gate (see [`Admission::enable_telemetry`]).
struct AdmissionTelemetry {
    admitted: Arc<Counter>,
    waited: Arc<Counter>,
    rejected: Arc<Counter>,
    timed_out: Arc<Counter>,
    /// Records 0 for immediate admissions too, so the percentiles describe
    /// *all* callers, not just the unlucky ones.
    wait_ns: Arc<LatencyHisto>,
}

/// Held for the duration of one admitted fan-out; releases the slot (and
/// wakes the head waiter) on drop, including during unwinding.
struct AdmissionPermit<'a>(&'a Admission);

impl Admission {
    fn new(mut config: AdmissionConfig) -> Self {
        config.max_active = config.max_active.max(1);
        Self {
            config,
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        }
    }

    /// Wires the gate into a metrics [`Registry`]. Idempotent; until
    /// called, `enter` touches no telemetry.
    fn enable_telemetry(&self, registry: &Registry) {
        registry.describe(
            "xwq_admission_admitted_total",
            "Fan-outs admitted through the gate, immediately or after waiting",
        );
        registry.describe(
            "xwq_admission_waited_total",
            "Fan-outs that took a ticket and waited before admission",
        );
        registry.describe(
            "xwq_admission_rejected_total",
            "Fan-outs rejected because the admission wait queue was full",
        );
        registry.describe(
            "xwq_admission_timeout_total",
            "Waiters that abandoned the queue when their admission deadline expired",
        );
        registry.describe(
            "xwq_admission_wait_ns",
            "Admission wait latency in nanoseconds (0 for immediate admissions)",
        );
        let _ = self.telemetry.set(AdmissionTelemetry {
            admitted: registry.counter("xwq_admission_admitted_total"),
            waited: registry.counter("xwq_admission_waited_total"),
            rejected: registry.counter("xwq_admission_rejected_total"),
            timed_out: registry.counter("xwq_admission_timeout_total"),
            wait_ns: registry.histo("xwq_admission_wait_ns"),
        });
    }

    fn enter(&self) -> Result<AdmissionPermit<'_>, CorpusError> {
        self.enter_ticketed().map(|(permit, _)| permit)
    }

    /// [`Self::enter`], also reporting the FIFO ticket this caller waited
    /// on (`None` for an immediate admission). The ticket is how the
    /// model-checking harness asserts arrival-order admission across all
    /// interleavings; production callers go through [`Self::enter`].
    fn enter_ticketed(&self) -> Result<(AdmissionPermit<'_>, Option<u64>), CorpusError> {
        let telemetry = self.telemetry.get();
        let mut state = self.state.lock().expect("admission poisoned");
        let mut waited_on = None;
        if state.active >= self.config.max_active || state.waiting() > 0 {
            if state.waiting() >= self.config.max_waiting {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = telemetry {
                    t.rejected.inc();
                }
                return Err(CorpusError::Overloaded {
                    active: state.active,
                    waiting: state.waiting(),
                });
            }
            let me = state.next_ticket;
            state.next_ticket += 1;
            waited_on = Some(me);
            self.waited.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = telemetry {
                t.waited.inc();
            }
            let start = telemetry.map(|_| Instant::now());
            let deadline = self.config.timeout.map(|d| Instant::now() + d);
            while !(state.serving == me && state.active < self.config.max_active) {
                match deadline {
                    None => state = self.cv.wait(state).expect("admission poisoned"),
                    Some(deadline) => {
                        let (guard, timed_out) = wait_deadline(&self.cv, state, deadline);
                        state = guard;
                        // A wake that is simultaneously a timeout and an
                        // admission goes to admission: re-check the
                        // predicate before withdrawing (under `--cfg model`
                        // the timeout is a scheduler choice, so both orders
                        // of that race are explored).
                        if timed_out
                            && !(state.serving == me && state.active < self.config.max_active)
                        {
                            // Withdraw the ticket. As the head waiter,
                            // hand `serving` on (and skip other
                            // abandoners) so the queue behind never
                            // stalls; otherwise leave a tombstone for
                            // `serving` to skip when it gets here.
                            if state.serving == me {
                                state.serving += 1;
                                state.skip_abandoned();
                            } else {
                                state.abandoned.insert(me);
                            }
                            self.timed_out.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = telemetry {
                                t.timed_out.inc();
                            }
                            let err = CorpusError::Overloaded {
                                active: state.active,
                                waiting: state.waiting(),
                            };
                            drop(state);
                            self.cv.notify_all();
                            return Err(err);
                        }
                    }
                };
            }
            state.serving += 1;
            state.skip_abandoned();
            if let (Some(t), Some(start)) = (telemetry, start) {
                t.wait_ns.record(start.elapsed().as_nanos() as u64);
            }
        } else if let Some(t) = telemetry {
            t.wait_ns.record(0);
        }
        state.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = telemetry {
            t.admitted.inc();
        }
        drop(state);
        // With max_active > 1 there may still be a free slot for the next
        // ticket holder — wake the queue so its head can check.
        self.cv.notify_all();
        Ok((AdmissionPermit(self), waited_on))
    }

    fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
        }
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("admission poisoned");
        state.active -= 1;
        drop(state);
        // notify_all, not notify_one: only the head ticket's holder may
        // proceed, and a single wake could land on a later ticket, which
        // would re-park and strand the queue.
        self.0.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementPolicy;
    use xwq_index::TopologyKind;

    fn corpus(shards: usize) -> Arc<Corpus> {
        let corpus = Corpus::new(shards, PlacementPolicy::RoundRobin);
        corpus
            .add_xml("alpha", "<r><x><y/></x><x/></r>", TopologyKind::Array)
            .unwrap();
        corpus
            .add_xml("beta", "<r><y/><x><y/></x></r>", TopologyKind::Succinct)
            .unwrap();
        corpus
            .add_xml("gamma", "<r><x/><x><y/></x><x/></r>", TopologyKind::Array)
            .unwrap();
        Arc::new(corpus)
    }

    #[test]
    fn fan_out_merges_in_name_order_and_matches_serial() {
        let corpus = corpus(2);
        let serial = ShardedSession::new(Arc::clone(&corpus), 0);
        let expect = serial.query_corpus("//x[y]", Strategy::Auto).unwrap();
        assert_eq!(
            expect.iter().map(|o| o.doc.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "beta", "gamma"]
        );
        assert_eq!(serial.total_workers(), 0, "serial mode spawns no workers");
        for workers in [1, 2, 8] {
            let pooled = ShardedSession::new(Arc::clone(&corpus), workers);
            let got = pooled.query_corpus("//x[y]", Strategy::Auto).unwrap();
            assert_eq!(got.len(), expect.len());
            for (a, b) in expect.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(
                    a.result.as_ref().unwrap().nodes,
                    b.result.as_ref().unwrap().nodes,
                    "doc {} at {workers} workers",
                    a.doc
                );
            }
        }
    }

    #[test]
    fn streaming_emission_matches_materialized_merge_across_combos() {
        for shards in [1, 2, 3] {
            let corpus = corpus(shards);
            let serial = ShardedSession::new(Arc::clone(&corpus), 0);
            let (expect, expect_stats) =
                serial.query_corpus_stats("//x[y]", Strategy::Auto).unwrap();
            for workers in [0, 1, 2, 8] {
                let session = ShardedSession::new(Arc::clone(&corpus), workers);
                let mut streamed = Vec::new();
                let stats = session
                    .query_corpus_streaming("//x[y]", Strategy::Auto, |o| streamed.push(o))
                    .unwrap();
                assert_eq!(stats, expect_stats, "{shards} shards {workers} workers");
                assert_eq!(streamed.len(), expect.len());
                for (a, b) in expect.iter().zip(&streamed) {
                    assert_eq!((a.doc.as_str(), a.shard), (b.doc.as_str(), b.shard));
                    assert_eq!(
                        a.result.as_ref().unwrap().nodes,
                        b.result.as_ref().unwrap().nodes,
                        "doc {} at {shards} shards {workers} workers",
                        a.doc
                    );
                }
                // Subset streaming too, including the error outcome path.
                let mut subset = Vec::new();
                session
                    .query_docs_streaming("//x[y]", Strategy::Auto, &["gamma", "alpha"], |o| {
                        subset.push(o.doc)
                    })
                    .unwrap();
                assert_eq!(subset, vec!["alpha", "gamma"]);
            }
        }
    }

    /// The slow-shard fixture: "beta" (alone on shard 1 of 2 under
    /// round-robin) blocks inside evaluation until the test releases it.
    /// The streaming sink must receive "alpha" — a different shard's
    /// document — while "beta" is still blocked, proving emission is
    /// incremental rather than gated on the full corpus latch. A merge
    /// that waited for every shard would deadlock here (bounded by the
    /// receive timeout) instead of passing.
    #[test]
    fn streaming_delivers_first_document_before_slow_shard_finishes() {
        use std::sync::mpsc;
        let corpus = corpus(2);
        let session = Arc::new(ShardedSession::new(Arc::clone(&corpus), 1));
        let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let gate = {
            let release = Arc::clone(&release);
            Arc::new(move |name: &str| {
                if name == "beta" {
                    let (lock, cv) = &*release;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
            }) as EvalGate
        };
        *session.eval_gate.lock().unwrap() = Some(gate);

        let (tx, rx) = mpsc::channel();
        let worker = {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                session
                    .query_corpus_streaming("//x", Strategy::Auto, |o| tx.send(o.doc).unwrap())
                    .unwrap()
            })
        };
        let first = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("first outcome must arrive while the slow shard is still blocked");
        assert_eq!(first, "alpha");
        // Only now let "beta" evaluate; the rest of the stream follows.
        {
            let (lock, cv) = &*release;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let rest: Vec<String> = rx.into_iter().collect();
        assert_eq!(rest, vec!["beta", "gamma"]);
        worker.join().unwrap();
    }

    #[test]
    fn workers_are_pinned_and_capped_per_shard() {
        let corpus = corpus(2);
        let session = ShardedSession::new(Arc::clone(&corpus), 8);
        session.query_corpus("//y", Strategy::Optimized).unwrap();
        for s in 0..corpus.shard_count() {
            let docs_on_shard = corpus
                .placements()
                .iter()
                .filter(|(_, shard)| *shard == s)
                .count();
            assert!(
                session.shard_workers(s) <= docs_on_shard,
                "shard {s}: {} workers for {docs_on_shard} docs",
                session.shard_workers(s)
            );
        }
        // A second identical fan-out reuses the pools (no growth) and the
        // per-shard compiled-query caches.
        let before = session.total_workers();
        session.query_corpus("//y", Strategy::Optimized).unwrap();
        assert_eq!(session.total_workers(), before);
        let cache = session.cache_stats();
        assert_eq!(cache.hits, 3, "second round hits every per-shard cache");
    }

    #[test]
    fn concurrent_fan_outs_share_the_pools_without_losing_jobs() {
        // Several admitted callers publish jobs to the same per-shard
        // pools side by side; with a single job slot (instead of the job
        // queue) a later publish would overwrite an unclaimed earlier job
        // and strand its caller on the latch forever. Every call must
        // complete with correct, identically-ordered results.
        let corpus = corpus(2);
        let session = Arc::new(ShardedSession::with_config(
            Arc::clone(&corpus),
            ShardedConfig {
                workers_per_shard: 1,
                admission: AdmissionConfig {
                    max_active: 8,
                    max_waiting: 64,
                    timeout: None,
                },
                ..ShardedConfig::default()
            },
        ));
        let expect: Vec<Vec<u32>> = session
            .query_corpus("//x[y]", Strategy::Optimized)
            .unwrap()
            .into_iter()
            .map(|o| o.result.unwrap().nodes)
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let session = Arc::clone(&session);
                let expect = expect.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let got: Vec<Vec<u32>> = session
                            .query_corpus("//x[y]", Strategy::Optimized)
                            .unwrap()
                            .into_iter()
                            .map(|o| o.result.unwrap().nodes)
                            .collect();
                        assert_eq!(got, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(session.admission_stats().admitted, 8 * 20 + 1);
        assert_eq!(session.admission_stats().rejected, 0);
    }

    #[test]
    fn subset_queries_validate_names_up_front() {
        let session = ShardedSession::new(corpus(2), 1);
        let out = session
            .query_docs("//x", Strategy::Auto, &["gamma", "alpha", "gamma"])
            .unwrap();
        assert_eq!(
            out.iter().map(|o| o.doc.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "gamma"],
            "subset is deduped and name-ordered"
        );
        assert!(matches!(
            session.query_docs("//x", Strategy::Auto, &["alpha", "nope"]),
            Err(CorpusError::UnknownDocument(n)) if n == "nope"
        ));
    }

    #[test]
    fn per_document_errors_do_not_abort_the_fan_out() {
        let session = ShardedSession::new(corpus(2), 2);
        let out = session.query_corpus("//[", Strategy::Auto).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|o| matches!(o.result, Err(SessionError::Query(_)))));
    }

    #[test]
    fn empty_corpus_serves_empty_answers() {
        let corpus = Arc::new(Corpus::new(2, PlacementPolicy::RoundRobin));
        let session = ShardedSession::new(corpus, 4);
        assert!(session
            .query_corpus("//x", Strategy::Auto)
            .unwrap()
            .is_empty());
        assert_eq!(session.total_workers(), 0);
    }

    #[test]
    fn admission_gate_counts_and_rejects() {
        let admission = Admission::new(AdmissionConfig {
            max_active: 1,
            max_waiting: 0,
            timeout: None,
        });
        let first = admission.enter().unwrap();
        // Queue full (no waiting allowed): immediate rejection.
        assert!(matches!(
            admission.enter(),
            Err(CorpusError::Overloaded {
                active: 1,
                waiting: 0
            })
        ));
        drop(first);
        let second = admission.enter().unwrap();
        drop(second);
        let stats = admission.stats();
        assert_eq!((stats.admitted, stats.waited, stats.rejected), (2, 0, 1));
    }

    #[test]
    fn admission_waiters_are_released_in_bounded_order() {
        let admission = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_waiting: 8,
            timeout: None,
        }));
        let permit = admission.enter().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let admission = Arc::clone(&admission);
                std::thread::spawn(move || {
                    let permit = admission.enter().unwrap();
                    drop(permit);
                })
            })
            .collect();
        // Give the waiters time to park, then open the gate.
        while admission.stats().waited < 4 {
            std::thread::yield_now();
        }
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        let stats = admission.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn admission_releases_waiters_in_strict_fifo_order() {
        let admission = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_waiting: 8,
            timeout: None,
        }));
        let order = Arc::new(Mutex::new(Vec::new()));
        let permit = admission.enter().unwrap();
        let mut handles = Vec::new();
        for i in 0..6u32 {
            let waited_before = admission.stats().waited;
            let gate = Arc::clone(&admission);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = gate.enter().unwrap();
                order.lock().unwrap().push(i);
                drop(permit);
            }));
            // Tickets are issued under the gate's mutex, so once the
            // waited counter moves this waiter's ticket is fixed and the
            // next spawn queues strictly behind it.
            while admission.stats().waited == waited_before {
                std::thread::yield_now();
            }
        }
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![0, 1, 2, 3, 4, 5],
            "waiters must be admitted in arrival order"
        );
    }

    #[test]
    fn admission_timeout_returns_overloaded_and_counts() {
        let admission = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_waiting: 8,
            timeout: Some(Duration::from_millis(20)),
        }));
        let permit = admission.enter().unwrap();
        let gate = Arc::clone(&admission);
        let waiter = std::thread::spawn(move || gate.enter().map(drop));
        while admission.stats().waited < 1 {
            std::thread::yield_now();
        }
        // The held permit outlives the waiter's deadline.
        let result = waiter.join().unwrap();
        assert!(matches!(result, Err(CorpusError::Overloaded { .. })));
        let stats = admission.stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.admitted, 1);
        drop(permit);
        // The gate still works after the withdrawal.
        drop(admission.enter().unwrap());
        assert_eq!(admission.stats().admitted, 2);
    }

    #[test]
    fn timed_out_waiters_do_not_stall_the_queue_behind_them() {
        // Two waiters park and both abandon: the one behind the head
        // leaves a tombstone, the head hands `serving` past it. A fresh
        // waiter arriving afterwards (full deadline ahead of it) must
        // still be admitted the moment the permit frees — abandoned
        // tickets may not wedge `serving`.
        let admission = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_waiting: 8,
            timeout: Some(Duration::from_millis(25)),
        }));
        let permit = admission.enter().unwrap();
        let quitters: Vec<_> = (0..2u64)
            .map(|i| {
                let gate = Arc::clone(&admission);
                let t = std::thread::spawn(move || gate.enter().map(drop));
                // Ticket order is fixed once the waited counter moves.
                while admission.stats().waited < i + 1 {
                    std::thread::yield_now();
                }
                t
            })
            .collect();
        for q in quitters {
            assert!(matches!(
                q.join().unwrap(),
                Err(CorpusError::Overloaded { .. })
            ));
        }
        assert_eq!(admission.stats().timed_out, 2);
        // Both tickets are withdrawn; a fresh waiter starts its own clock.
        let gate = Arc::clone(&admission);
        let stayer = std::thread::spawn(move || gate.enter().map(drop));
        while admission.stats().waited < 3 {
            std::thread::yield_now();
        }
        drop(permit);
        assert!(stayer.join().unwrap().is_ok());
        let stats = admission.stats();
        assert_eq!((stats.admitted, stats.timed_out), (2, 2));
    }

    #[test]
    fn session_config_timeout_reaches_the_gate() {
        let corpus = corpus(1);
        let session = ShardedSession::with_config(
            corpus,
            ShardedConfig {
                workers_per_shard: 1,
                admission: AdmissionConfig {
                    max_active: 1,
                    max_waiting: 4,
                    timeout: Some(Duration::from_millis(10)),
                },
                ..ShardedConfig::default()
            },
        );
        let registry = Registry::new();
        session.enable_telemetry(&registry);
        let _permit = session.admission.enter().unwrap();
        // This caller waits behind the held permit and times out.
        assert!(matches!(
            session.query_corpus("//x", Strategy::Auto),
            Err(CorpusError::Overloaded { .. })
        ));
        assert_eq!(session.admission_stats().timed_out, 1);
        let text = registry.render(xwq_obs::RenderFormat::Prometheus);
        assert!(
            text.contains("xwq_admission_timeout_total 1"),
            "timeout counter must export:\n{text}"
        );
    }

    #[test]
    fn corpus_stats_totals_match_serial_across_worker_counts() {
        // Hybrid compiles to a pure spine plan: per-request stats carry no
        // memo warmth, so a fresh session yields identical stats per
        // document regardless of worker count or claim order.
        let corpus = corpus(2);
        let serial = ShardedSession::new(Arc::clone(&corpus), 0);
        let (outcomes, serial_totals) = serial
            .query_corpus_stats("//x[y]", Strategy::Hybrid)
            .unwrap();
        let mut summed = EvalStats::default();
        for o in &outcomes {
            summed.accumulate(&o.result.as_ref().unwrap().stats);
        }
        assert_eq!(
            serial_totals, summed,
            "serial totals equal the sum over outcomes"
        );
        for workers in [1, 2, 8] {
            let pooled = ShardedSession::new(Arc::clone(&corpus), workers);
            let (out, totals) = pooled
                .query_corpus_stats("//x[y]", Strategy::Hybrid)
                .unwrap();
            assert_eq!(out.len(), outcomes.len());
            assert_eq!(totals, serial_totals, "{workers} workers");
        }
    }

    #[test]
    fn telemetry_covers_fanout_queue_wait_and_admission() {
        let corpus = corpus(2);
        let session = ShardedSession::new(Arc::clone(&corpus), 2);
        let registry = Registry::new();
        session.enable_telemetry(&registry);
        session.query_corpus("//x[y]", Strategy::Auto).unwrap();
        session.query_corpus("//x[y]", Strategy::Auto).unwrap();
        let text = registry.render(xwq_obs::RenderFormat::Prometheus);
        assert!(
            text.contains("xwq_corpus_fanout_latency_ns_count 2"),
            "fan-out histogram counts both calls:\n{text}"
        );
        assert!(
            text.contains("xwq_shard_queue_wait_ns"),
            "queue-wait histogram is registered:\n{text}"
        );
        assert!(
            text.contains("xwq_admission_admitted_total 2"),
            "admission counters move:\n{text}"
        );
        assert!(
            text.contains("xwq_session_query_latency_ns_count{shard=\"0\"}"),
            "per-shard session latency is labelled:\n{text}"
        );
    }

    #[test]
    fn sharded_session_rejects_when_overloaded() {
        let corpus = corpus(1);
        let session = Arc::new(ShardedSession::with_config(
            corpus,
            ShardedConfig {
                workers_per_shard: 1,
                admission: AdmissionConfig {
                    max_active: 1,
                    max_waiting: 0,
                    timeout: None,
                },
                ..ShardedConfig::default()
            },
        ));
        // Hold the only admission slot on another thread long enough for
        // this thread to observe the rejection.
        let holder = Arc::clone(&session);
        let gate = Arc::new((Mutex::new(0u8), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            let _permit = holder.admission.enter().unwrap();
            let (stage, cv) = &*gate2;
            *stage.lock().unwrap() = 1;
            cv.notify_all();
            let mut stage = stage.lock().unwrap();
            while *stage < 2 {
                stage = cv.wait(stage).unwrap();
            }
        });
        let (stage, cv) = &*gate;
        {
            let mut stage = stage.lock().unwrap();
            while *stage < 1 {
                stage = cv.wait(stage).unwrap();
            }
        }
        assert!(matches!(
            session.query_corpus("//x", Strategy::Auto),
            Err(CorpusError::Overloaded { .. })
        ));
        assert_eq!(session.admission_stats().rejected, 1);
        *stage.lock().unwrap() = 2;
        cv.notify_all();
        t.join().unwrap();
        // The slot is free again.
        assert!(session.query_corpus("//x", Strategy::Auto).is_ok());
    }
}

/// Exhaustive model checks of this module's concurrency protocols. Only
/// built under `RUSTFLAGS="--cfg model"`, where `crate::sync` resolves to
/// the `xwq_verify` shims: every test body runs once per schedule the
/// deterministic scheduler can construct within the preemption bound, and
/// the assertions must hold on *all* of them. A failure panics with a
/// seed that `XWQ_MODEL_REPLAY` replays deterministically.
#[cfg(all(test, model))]
mod model_tests {
    use super::*;
    use xwq_store::DocumentStore;
    use xwq_verify::Config;

    /// Preemption bound 2 covers every bug class this repo has shipped
    /// (see `crates/verify/tests/pr5_race.rs`): one unforced switch to
    /// open a race window, one to land in it.
    fn cfg() -> Config {
        Config {
            preemption_bound: Some(2),
            ..Config::default()
        }
    }

    fn tiny_session() -> Arc<Session> {
        let store = DocumentStore::new();
        store
            .insert_xml("d0", "<r><x/><x/></r>", xwq_index::TopologyKind::Array)
            .unwrap();
        store
            .insert_xml("d1", "<r><x/></r>", xwq_index::TopologyKind::Array)
            .unwrap();
        Arc::new(Session::with_cache_capacity(Arc::new(store), 4))
    }

    fn shard_job(
        slot: usize,
        name: &str,
        out: &ResultSlots,
        pending: &Arc<(Mutex<usize>, Condvar)>,
        totals: &Arc<Mutex<EvalStats>>,
    ) -> ShardJob {
        ShardJob {
            query: Arc::from("//x"),
            strategy: Strategy::Auto,
            docs: Arc::new(vec![(slot, name.to_string())]),
            cursor: Arc::new(AtomicUsize::new(0)),
            participants: Arc::new(AtomicUsize::new(0)),
            limit: 1,
            out: Arc::clone(out),
            pending: Arc::clone(pending),
            totals: Arc::clone(totals),
            queue_wait: None,
            gate: None,
        }
    }

    /// Publish → claim → park → shutdown on a real `ShardPool` with a real
    /// (single-worker) session: across every schedule, both queued jobs are
    /// fully answered, the caller's latch releases, and `begin_shutdown` +
    /// `join` terminate — no lost wakeup, no overwritten job, no worker
    /// sleeping through its own shutdown.
    #[test]
    fn model_pool_publish_claim_park_shutdown() {
        let report = xwq_verify::check("shard-pool-lifecycle", cfg(), || {
            let session = tiny_session();
            let pool = ShardPool::new(0);
            pool.ensure_workers(1, &session);
            let out: ResultSlots = Arc::new(Mutex::new(vec![None, None]));
            let pending = Arc::new((Mutex::new(2usize), Condvar::new()));
            let totals = Arc::new(Mutex::new(EvalStats::default()));
            // Two outstanding jobs: with a single job *slot* instead of the
            // queue, one publish would overwrite the other and strand the
            // latch in some schedule.
            pool.publish(shard_job(0, "d0", &out, &pending, &totals));
            pool.publish(shard_job(1, "d1", &out, &pending, &totals));
            let (left, cv) = &*pending;
            let mut left = left.lock().unwrap();
            while *left > 0 {
                left = cv.wait(left).unwrap();
            }
            drop(left);
            {
                let slots = out.lock().unwrap();
                let n0 = slots[0].as_ref().unwrap().as_ref().unwrap().nodes.len();
                let n1 = slots[1].as_ref().unwrap().as_ref().unwrap().nodes.len();
                assert_eq!((n0, n1), (2, 1), "every document answered correctly");
            }
            pool.begin_shutdown();
            pool.join();
        });
        // A floor on the explored-schedule count: if the cfg wiring ever
        // degrades the shims to passthrough, exploration collapses to one
        // schedule and this catches it.
        assert!(report.schedules > 50, "exploration collapsed: {report:?}");
        assert!(report.complete, "schedule tree exhausted: {report:?}");
    }

    /// FIFO admission under every interleaving: two callers race for
    /// tickets behind a held permit; whoever drew the lower ticket must be
    /// admitted first, and the gate must end fully drained.
    #[test]
    fn model_admission_gate_is_fifo_and_drains() {
        let report = xwq_verify::check("admission-fifo", cfg(), || {
            let admission = Arc::new(Admission::new(AdmissionConfig {
                max_active: 1,
                max_waiting: 4,
                timeout: None,
            }));
            // Admission order log. With `max_active == 1` a holder logs its
            // ticket *before* releasing the permit, so log order is exactly
            // admission order.
            let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let head = admission.enter().unwrap();
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&admission);
                    let log = Arc::clone(&log);
                    sync_thread::spawn(move || {
                        let (permit, ticket) = gate.enter_ticketed().unwrap();
                        if let Some(t) = ticket {
                            log.lock().unwrap().push(t);
                        }
                        drop(permit);
                    })
                })
                .collect();
            drop(head);
            for w in waiters {
                w.join().unwrap();
            }
            let log = log.lock().unwrap();
            assert!(
                log.windows(2).all(|w| w[0] < w[1]),
                "tickets admitted out of arrival order: {log:?}"
            );
            let state = admission.state.lock().unwrap();
            assert_eq!(state.active, 0);
            assert_eq!(state.serving, state.next_ticket, "queue fully drained");
            assert!(state.abandoned.is_empty());
            drop(state);
            assert_eq!(admission.stats().admitted, 3);
        });
        // A floor on the explored-schedule count: if the cfg wiring ever
        // degrades the shims to passthrough, exploration collapses to one
        // schedule and this catches it.
        assert!(report.schedules > 50, "exploration collapsed: {report:?}");
        assert!(report.complete, "schedule tree exhausted: {report:?}");
    }

    /// Timeout withdrawal under every interleaving: with a deadline
    /// configured, the model scheduler chooses nondeterministically at each
    /// wake whether a waiter's deadline has expired, so this explores head
    /// hand-off, behind-the-head tombstones, and the timeout-vs-admission
    /// tie (admission must win). Invariants: nobody strands (the check
    /// itself fails on deadlock), the gate drains, and every caller is
    /// accounted admitted or timed out.
    #[test]
    fn model_admission_timeout_hands_off_and_strands_nobody() {
        let report = xwq_verify::check("admission-timeout", cfg(), || {
            let admission = Arc::new(Admission::new(AdmissionConfig {
                max_active: 1,
                max_waiting: 4,
                // The duration is irrelevant under `--cfg model`: expiry is
                // a scheduler decision, not a clock read.
                timeout: Some(Duration::from_millis(1)),
            }));
            let head = admission.enter().unwrap();
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&admission);
                    sync_thread::spawn(move || match gate.enter() {
                        Ok(permit) => {
                            drop(permit);
                            true
                        }
                        Err(CorpusError::Overloaded { .. }) => false,
                        Err(e) => panic!("unexpected admission error: {e}"),
                    })
                })
                .collect();
            drop(head);
            let admitted_waiters = waiters
                .into_iter()
                .map(|w| w.join().unwrap())
                .filter(|admitted| *admitted)
                .count() as u64;
            let state = admission.state.lock().unwrap();
            assert_eq!(state.active, 0);
            assert_eq!(
                state.serving, state.next_ticket,
                "withdrawn tickets may not wedge `serving`"
            );
            assert!(state.abandoned.is_empty(), "tombstones are consumed");
            drop(state);
            let stats = admission.stats();
            assert_eq!(stats.admitted, 1 + admitted_waiters);
            assert_eq!(stats.timed_out, 2 - admitted_waiters);
            assert_eq!(stats.rejected, 0);
        });
        // A floor on the explored-schedule count: if the cfg wiring ever
        // degrades the shims to passthrough, exploration collapses to one
        // schedule and this catches it.
        assert!(report.schedules > 50, "exploration collapsed: {report:?}");
        assert!(report.complete, "schedule tree exhausted: {report:?}");
    }
}
