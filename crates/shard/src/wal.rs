//! The corpus write-ahead log (`MANIFEST.wal`): checksummed,
//! length-prefixed, generation-stamped mutation records that make corpus
//! updates durable and crash-recoverable.
//!
//! The manifest (`MANIFEST.xwqc`) is the *checkpoint*: a full catalog
//! snapshot, rewritten atomically but not on every mutation. The WAL is
//! the delta on top of it — one record per committed `add`/`replace`/
//! `remove`. A commit is: append the record, `sync_data` the log, fsync
//! the corpus directory. Recovery on open replays the log over the last
//! checkpoint and truncates any torn tail (short record or bad checksum),
//! so a crash at any byte lands the catalog on either the pre-op or the
//! post-op state, never a mix.
//!
//! ```text
//! file   := magic "XWQW" | version u32
//!         | record*
//! record := payload_len u32 | crc u64 (over payload) | payload
//! payload:= kind u8 | gen u64 | kind-specific fields
//!   AddDoc / ReplaceDoc : name str | file str | nodes u64
//!   RemoveDoc           : name str
//!   Checkpoint          : (gen = next generation to hand out)
//! str    := len u32 | utf-8 bytes
//! ```
//!
//! All integers are little-endian. The crc is the same pinned mixer the
//! `.xwqi` payload uses ([`xwq_store::payload_checksum`]), so the two
//! on-disk formats share one checksum spec.
//!
//! # Fault injection
//!
//! The commit path writes through a trait object ([`WalFile`]) so tests
//! and the CI crash matrix can install a [`FaultPlan`]: stop the log at an
//! exact byte (leaving a genuinely torn record on disk), or fail one of
//! the fsync points (log, staged artifact, directory). A faulted commit
//! returns an error and poisons the in-process writer; the on-disk state
//! is exactly what a power cut at that point would leave, and reopening
//! the corpus must recover from it.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xwq_store::payload_checksum;

/// The log file name inside a corpus directory.
pub const WAL_FILE: &str = "MANIFEST.wal";

/// File magic: `XWQW`.
pub const WAL_MAGIC: [u8; 4] = *b"XWQW";

/// The log format version this code writes.
pub const WAL_VERSION: u32 = 1;

/// Bytes of the file-level header (magic + version).
pub const WAL_HEADER_LEN: usize = 8;

/// Per-record header: payload length (u32) + crc (u64).
const RECORD_HEADER_LEN: usize = 12;

/// Upper bound on a single record's payload. Document names and artifact
/// file names are short; anything past this in a length prefix is torn
/// bytes read as a length, not a real record.
const MAX_PAYLOAD: u32 = 1 << 20;

/// Errors from reading or writing the log.
#[derive(Debug)]
pub enum WalError {
    /// Reading, writing or syncing the log failed.
    Io(io::Error),
    /// The file exists but does not start with [`WAL_MAGIC`] — it is not a
    /// WAL, so recovery refuses to truncate or replay it.
    BadMagic,
    /// The log declares a version this code cannot replay.
    UnsupportedVersion(u32),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal: {e}"),
            WalError::BadMagic => write!(f, "wal: not a MANIFEST.wal file (bad magic)"),
            WalError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "wal: version {v} unsupported (this build replays {WAL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged catalog mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A new document: `file` is its committed artifact name, relative to
    /// the corpus directory.
    AddDoc {
        /// Corpus-wide document name.
        name: String,
        /// Artifact file name (generation-stamped, e.g. `a.g3.xwqi`).
        file: String,
        /// Node count (placement hint, mirrors the manifest column).
        nodes: u64,
    },
    /// An existing document re-pointed at a new artifact. The superseded
    /// artifact goes to epoch GC, not straight to `unlink`.
    ReplaceDoc {
        /// Corpus-wide document name.
        name: String,
        /// The *new* artifact file name.
        file: String,
        /// Node count of the new document.
        nodes: u64,
    },
    /// A document dropped from the catalog.
    RemoveDoc {
        /// Corpus-wide document name.
        name: String,
    },
    /// A checkpoint marker: the manifest on disk reflects everything up to
    /// here. Written as the sole record of a freshly reset log; its
    /// generation stamp carries the next generation to hand out, so
    /// generations stay monotonic across checkpoints.
    Checkpoint,
}

/// A generation-stamped log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic per-corpus generation of this mutation (for
    /// [`WalOp::Checkpoint`]: the next generation to hand out).
    pub gen: u64,
    /// The mutation.
    pub op: WalOp,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl WalRecord {
    /// Serializes this record (record header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        let kind: u8 = match &self.op {
            WalOp::AddDoc { .. } => 1,
            WalOp::ReplaceDoc { .. } => 2,
            WalOp::RemoveDoc { .. } => 3,
            WalOp::Checkpoint => 4,
        };
        payload.push(kind);
        payload.extend_from_slice(&self.gen.to_le_bytes());
        match &self.op {
            WalOp::AddDoc { name, file, nodes } | WalOp::ReplaceDoc { name, file, nodes } => {
                put_str(&mut payload, name);
                put_str(&mut payload, file);
                payload.extend_from_slice(&nodes.to_le_bytes());
            }
            WalOp::RemoveDoc { name } => put_str(&mut payload, name),
            WalOp::Checkpoint => {}
        }
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload_checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes one payload (crc already verified). `None` means the
    /// payload is malformed — the scanner treats that as a torn record.
    fn decode(payload: &[u8]) -> Option<WalRecord> {
        struct Cur<'a>(&'a [u8]);
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                let (head, tail) = self.0.split_at_checked(n)?;
                self.0 = tail;
                Some(head)
            }
            fn u64(&mut self) -> Option<u64> {
                Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
            }
            fn str(&mut self) -> Option<String> {
                let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
                String::from_utf8(self.take(len)?.to_vec()).ok()
            }
        }
        let mut c = Cur(payload);
        let kind = *c.take(1)?.first()?;
        let gen = c.u64()?;
        let op = match kind {
            1 | 2 => {
                let name = c.str()?;
                let file = c.str()?;
                let nodes = c.u64()?;
                if kind == 1 {
                    WalOp::AddDoc { name, file, nodes }
                } else {
                    WalOp::ReplaceDoc { name, file, nodes }
                }
            }
            3 => WalOp::RemoveDoc { name: c.str()? },
            4 => WalOp::Checkpoint,
            _ => return None,
        };
        if !c.0.is_empty() {
            return None;
        }
        Some(WalRecord { gen, op })
    }
}

/// Why a scan stopped before the end of the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes dropped from the end of the log.
    pub dropped_bytes: u64,
    /// Human-readable cause (short header, short payload, bad checksum,
    /// malformed payload).
    pub reason: String,
}

/// The result of scanning a log image.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the well-formed prefix (file header included).
    /// Recovery truncates the file to this length when a tail was torn.
    pub valid_len: u64,
    /// Present when the scan dropped a tail.
    pub torn: Option<TornTail>,
}

/// Scans a log image, collecting intact records and locating the first
/// torn byte. Never fails on a damaged *tail* — that is the normal crash
/// case — but refuses files that are not WALs at all.
pub fn scan(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut out = WalScan::default();
    if bytes.len() < WAL_HEADER_LEN {
        // A file this short cannot even name itself; treat the whole file
        // as a torn creation and let recovery truncate it away.
        out.torn = Some(TornTail {
            dropped_bytes: bytes.len() as u64,
            reason: "file shorter than the WAL header".to_string(),
        });
        return Ok(out);
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }
    let mut pos = WAL_HEADER_LEN;
    out.valid_len = pos as u64;
    let torn = |pos: usize, reason: &str| TornTail {
        dropped_bytes: (bytes.len() - pos) as u64,
        reason: reason.to_string(),
    };
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER_LEN {
            out.torn = Some(torn(pos, "short record header"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            out.torn = Some(torn(pos, "implausible payload length"));
            break;
        }
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let start = pos + RECORD_HEADER_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            out.torn = Some(torn(pos, "short payload"));
            break;
        }
        let payload = &bytes[start..end];
        if payload_checksum(payload) != crc {
            out.torn = Some(torn(pos, "payload checksum mismatch"));
            break;
        }
        let Some(record) = WalRecord::decode(payload) else {
            out.torn = Some(torn(pos, "malformed payload"));
            break;
        };
        out.records.push(record);
        pos = end;
        out.valid_len = pos as u64;
    }
    Ok(out)
}

/// fsyncs a directory so a rename or file creation inside it is durable.
/// No-op on platforms where directories cannot be opened (non-unix).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Where a [`FaultPlan`] kills the commit path. Test/CI-only: installing
/// one makes exactly one class of I/O fail the way a power cut would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailPoint {
    /// The log stops accepting bytes after `n` total: a write straddling
    /// the mark is cut short (a genuinely torn record lands on disk) and
    /// the commit errors. `WalWriteAt(0)` fails before any byte.
    WalWriteAt(u64),
    /// `sync_data` on the log fails after the bytes are written.
    WalSync,
    /// `sync_data` on the staged artifact fails (before the WAL record is
    /// ever written — the cleanest abort point).
    StageSync,
    /// The corpus-directory fsync at the end of a commit fails.
    DirSync,
}

impl std::str::FromStr for FailPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(n) = s.strip_prefix("write:") {
            return n
                .parse()
                .map(FailPoint::WalWriteAt)
                .map_err(|_| format!("bad byte count in fail point {s:?}"));
        }
        match s {
            "sync" => Ok(FailPoint::WalSync),
            "stage-sync" => Ok(FailPoint::StageSync),
            "dir-sync" => Ok(FailPoint::DirSync),
            other => Err(format!(
                "unknown fail point {other:?} (expected write:<n>|sync|stage-sync|dir-sync)"
            )),
        }
    }
}

/// A fault plan shared across the commit path's I/O points (the trait
/// object writer plus the staging and directory fsyncs).
#[derive(Debug)]
pub struct FaultPlan {
    point: FailPoint,
    /// Bytes already allowed into the log under this plan (so
    /// [`FailPoint::WalWriteAt`] counts across appends of one op).
    wal_written: AtomicU64,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl FaultPlan {
    /// A plan that fails at `point`.
    pub fn new(point: FailPoint) -> Arc<Self> {
        Arc::new(Self {
            point,
            wal_written: AtomicU64::new(0),
        })
    }

    /// For [`FailPoint::WalWriteAt`]: bytes of the *current* write allowed
    /// before the cut, or `None` when the write passes whole.
    fn partial_wal_write(&self, len: u64) -> Option<u64> {
        match self.point {
            FailPoint::WalWriteAt(n) => {
                let written = self.wal_written.load(Ordering::Relaxed);
                if written + len <= n {
                    None
                } else {
                    Some(n.saturating_sub(written))
                }
            }
            _ => None,
        }
    }

    fn wal_sync_fails(&self) -> bool {
        self.point == FailPoint::WalSync
    }

    /// True when the staged-artifact `sync_data` must fail.
    pub fn stage_sync_fails(&self) -> bool {
        self.point == FailPoint::StageSync
    }

    fn dir_sync_fails(&self) -> bool {
        self.point == FailPoint::DirSync
    }
}

/// The appender's file abstraction: real file or fault-injected wrapper.
trait WalFile: Send {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    fn sync_data(&mut self) -> io::Result<()>;
}

struct RealWalFile(File);

impl WalFile for RealWalFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

struct FaultWalFile {
    file: File,
    plan: Arc<FaultPlan>,
}

impl WalFile for FaultWalFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(short) = self.plan.partial_wal_write(buf.len() as u64) {
            // Land exactly `short` bytes (and make them visible like a
            // crashed page-cache flush would), then report the cut.
            self.file.write_all(&buf[..short as usize])?;
            let _ = self.file.sync_data();
            self.plan.wal_written.fetch_add(short, Ordering::Relaxed);
            return Err(injected("wal write cut short"));
        }
        self.plan
            .wal_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.file.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        if self.plan.wal_sync_fails() {
            return Err(injected("wal sync_data failed"));
        }
        self.file.sync_data()
    }
}

/// The single-writer log appender. Commit discipline: append the encoded
/// record, `sync_data` the log, fsync the corpus directory — only then is
/// the mutation durable.
pub struct WalAppender {
    file: Box<dyn WalFile>,
    dir: PathBuf,
    plan: Option<Arc<FaultPlan>>,
}

impl fmt::Debug for WalAppender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalAppender")
            .field("dir", &self.dir)
            .field("faulted", &self.plan.is_some())
            .finish()
    }
}

fn boxed(file: File, plan: Option<&Arc<FaultPlan>>) -> Box<dyn WalFile> {
    match plan {
        Some(plan) => Box::new(FaultWalFile {
            file,
            plan: Arc::clone(plan),
        }),
        None => Box::new(RealWalFile(file)),
    }
}

impl WalAppender {
    /// Opens `dir/MANIFEST.wal` for appending, creating it (with a durable
    /// header) if missing. The file must already have been scanned and, if
    /// torn, truncated — the appender trusts it ends on a record boundary.
    pub fn open(dir: &Path, plan: Option<&Arc<FaultPlan>>) -> Result<Self, WalError> {
        let path = dir.join(WAL_FILE);
        let existed = path.exists();
        let mut file = OpenOptions::new().append(true).create(true).open(&path)?;
        if !existed || file.metadata()?.len() == 0 {
            file.write_all(&WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_data()?;
            fsync_dir(dir)?;
        }
        Ok(Self {
            file: boxed(file, plan),
            dir: dir.to_path_buf(),
            plan: plan.cloned(),
        })
    }

    /// Appends and durably commits one record. On `Err` the log may hold a
    /// torn tail (exactly what a power cut leaves); the caller must stop
    /// using this appender and let the next open recover.
    pub fn commit(&mut self, record: &WalRecord) -> io::Result<()> {
        self.file.write_all(&record.encode())?;
        self.file.sync_data()?;
        if self.plan.as_ref().is_some_and(|p| p.dir_sync_fails()) {
            return Err(injected("directory fsync failed"));
        }
        fsync_dir(&self.dir)
    }
}

/// Atomically resets `dir/MANIFEST.wal` to a fresh log holding a single
/// [`WalOp::Checkpoint`] record stamped `next_gen` — the checkpoint path.
/// Stage-write + rename, with file and directory fsyncs, so the swap can
/// never tear: a crash leaves either the old log or the new one.
pub fn reset(dir: &Path, next_gen: u64) -> Result<(), WalError> {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&WAL_MAGIC);
    bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
    bytes.extend_from_slice(
        &WalRecord {
            gen: next_gen,
            op: WalOp::Checkpoint,
        }
        .encode(),
    );
    atomic_write(dir, WAL_FILE, &bytes)?;
    Ok(())
}

/// Durably replaces `dir/name` via stage + rename: write the bytes to a
/// temporary sibling, `sync_data` it, rename over the target, fsync the
/// directory. Used by the WAL reset and the atomic manifest writer.
pub fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let staged = dir.join(format!(".stage.{name}"));
    let target = dir.join(name);
    let mut f = File::create(&staged)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    drop(f);
    if let Err(e) = std::fs::rename(&staged, &target) {
        let _ = std::fs::remove_file(&staged);
        return Err(e);
    }
    fsync_dir(dir)
}

/// Durably writes a staged artifact: create, write, `sync_data` — with the
/// fault plan's stage-sync point honoured. The caller renames after the
/// WAL record commits.
pub fn stage_write(path: &Path, bytes: &[u8], plan: Option<&Arc<FaultPlan>>) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    if plan.is_some_and(|p| p.stage_sync_fails()) {
        return Err(injected("staged artifact sync_data failed"));
    }
    f.sync_data()
}

/// Reads and scans `dir/MANIFEST.wal`; when the tail is torn, truncates
/// the file back to its well-formed prefix (durably) so the appender can
/// continue from a clean boundary. A missing log is an empty scan.
pub fn recover(dir: &Path) -> Result<WalScan, WalError> {
    let path = dir.join(WAL_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e.into()),
    }
    let scan = scan(&bytes)?;
    if scan.torn.is_some() {
        let f = OpenOptions::new().write(true).open(&path)?;
        f.set_len(scan.valid_len)?;
        f.sync_data()?;
        fsync_dir(dir)?;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(gen: u64, op: WalOp) -> WalRecord {
        WalRecord { gen, op }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            rec(
                1,
                WalOp::AddDoc {
                    name: "alpha".into(),
                    file: "alpha.g1.xwqi".into(),
                    nodes: 42,
                },
            ),
            rec(
                2,
                WalOp::ReplaceDoc {
                    name: "alpha".into(),
                    file: "alpha.g2.xwqi".into(),
                    nodes: 50,
                },
            ),
            rec(
                3,
                WalOp::RemoveDoc {
                    name: "alpha".into(),
                },
            ),
            rec(4, WalOp::Checkpoint),
        ]
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for r in records {
            bytes.extend_from_slice(&r.encode());
        }
        bytes
    }

    #[test]
    fn records_roundtrip_through_the_scanner() {
        let records = sample_records();
        let scan = scan(&image(&records)).unwrap();
        assert_eq!(scan.records, records);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, image(&records).len() as u64);
    }

    #[test]
    fn every_byte_prefix_scans_to_a_record_boundary() {
        let records = sample_records();
        let bytes = image(&records);
        // Record end offsets: each cut must recover exactly the records
        // whose encoding fits entirely inside the prefix.
        let mut ends = vec![WAL_HEADER_LEN as u64];
        for r in &records {
            ends.push(ends.last().unwrap() + r.encode().len() as u64);
        }
        for cut in 0..=bytes.len() {
            let scan = scan(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: scan must not fail on a pure prefix: {e}"));
            if cut < WAL_HEADER_LEN {
                // Torn before the file even named itself: nothing valid.
                assert!(scan.records.is_empty(), "cut {cut}");
                assert_eq!(scan.valid_len, 0, "cut {cut}");
                assert!(scan.torn.is_some(), "cut {cut}");
                continue;
            }
            let complete = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            assert_eq!(scan.records.len(), complete, "cut {cut}");
            assert_eq!(scan.valid_len, ends[complete], "cut {cut}");
            assert_eq!(
                scan.torn.is_some(),
                (cut as u64) != ends[complete],
                "cut {cut}: torn iff the cut is mid-record"
            );
        }
    }

    #[test]
    fn non_wal_files_are_refused_not_truncated() {
        assert!(matches!(scan(b"XWQI....full"), Err(WalError::BadMagic)));
        let mut bytes = image(&[]);
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(scan(&bytes), Err(WalError::UnsupportedVersion(9))));
    }

    #[test]
    fn fail_point_tokens_parse() {
        assert_eq!("write:17".parse(), Ok(FailPoint::WalWriteAt(17)));
        assert_eq!("sync".parse(), Ok(FailPoint::WalSync));
        assert_eq!("stage-sync".parse(), Ok(FailPoint::StageSync));
        assert_eq!("dir-sync".parse(), Ok(FailPoint::DirSync));
        assert!("explode".parse::<FailPoint>().is_err());
    }
}
