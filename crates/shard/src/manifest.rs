//! The corpus manifest: a small text file (`MANIFEST.xwqc`) naming every
//! per-document `.xwqi` artifact a corpus directory holds.
//!
//! Keeping one `.xwqi` per document (instead of a multi-document
//! container) means each artifact stays independently mmap-able and
//! re-buildable, and adding or dropping a document never rewrites the
//! others. The manifest just pins the names: line-based, tab-separated,
//! dependency-free to parse.
//!
//! ```text
//! xwq-corpus 1
//! doc<TAB>name<TAB>file.xwqi<TAB>nodes
//! ```

use std::fmt;
use std::path::Path;

/// The manifest file name inside a corpus directory.
pub const MANIFEST_FILE: &str = "MANIFEST.xwqc";

/// The format version this code writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Errors from reading or writing a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not a manifest or is structurally broken.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The manifest declares a version this code cannot read.
    UnsupportedVersion(u32),
    /// A document name is unusable in the tab-separated format.
    BadName(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest: {e}"),
            ManifestError::Malformed { line, reason } => {
                write!(f, "manifest line {line}: {reason}")
            }
            ManifestError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "manifest version {v} unsupported (this build reads {MANIFEST_VERSION})"
                )
            }
            ManifestError::BadName(n) => write!(
                f,
                "document name {n:?} contains tab/newline or is empty (unusable in a manifest)"
            ),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One manifest row: a named document and its `.xwqi` artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestDoc {
    /// The corpus-wide document name.
    pub name: String,
    /// Artifact path, relative to the manifest's directory.
    pub file: String,
    /// Node count recorded at build time (placement hint; the authoritative
    /// count always comes from the loaded index).
    pub nodes: usize,
}

/// A parsed corpus manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    docs: Vec<ManifestDoc>,
}

/// True if `s` can appear as a tab-separated manifest field.
fn field_ok(s: &str) -> bool {
    !s.is_empty() && !s.contains(['\t', '\n', '\r'])
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The documents, in the order they were added (build order).
    pub fn docs(&self) -> &[ManifestDoc] {
        &self.docs
    }

    /// Appends a document row, validating the fields.
    pub fn push(&mut self, name: &str, file: &str, nodes: usize) -> Result<(), ManifestError> {
        if !field_ok(name) {
            return Err(ManifestError::BadName(name.to_string()));
        }
        if !field_ok(file) {
            return Err(ManifestError::BadName(file.to_string()));
        }
        self.docs.push(ManifestDoc {
            name: name.to_string(),
            file: file.to_string(),
            nodes,
        });
        Ok(())
    }

    /// Serializes to the manifest text format.
    pub fn to_text(&self) -> String {
        let mut out = format!("xwq-corpus {MANIFEST_VERSION}\n");
        for d in &self.docs {
            out.push_str(&format!("doc\t{}\t{}\t{}\n", d.name, d.file, d.nodes));
        }
        out
    }

    /// Parses the manifest text format.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ManifestError::Malformed {
            line: 1,
            reason: "empty file".to_string(),
        })?;
        let version = header
            .strip_prefix("xwq-corpus ")
            .and_then(|v| v.trim().parse::<u32>().ok())
            .ok_or(ManifestError::Malformed {
                line: 1,
                reason: format!("expected `xwq-corpus <version>`, got {header:?}"),
            })?;
        if version != MANIFEST_VERSION {
            return Err(ManifestError::UnsupportedVersion(version));
        }
        let mut manifest = Manifest::new();
        for (i, line) in lines {
            let line_no = i + 1;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[..] {
                ["doc", name, file, nodes] => {
                    let nodes = nodes
                        .parse::<usize>()
                        .map_err(|_| ManifestError::Malformed {
                            line: line_no,
                            reason: format!("bad node count {nodes:?}"),
                        })?;
                    if manifest.docs.iter().any(|d| d.name == name) {
                        return Err(ManifestError::Malformed {
                            line: line_no,
                            reason: format!("duplicate document name {name:?}"),
                        });
                    }
                    manifest.push(name, file, nodes)?;
                }
                _ => {
                    return Err(ManifestError::Malformed {
                        line: line_no,
                        reason: format!("expected `doc<TAB>name<TAB>file<TAB>nodes`, got {line:?}"),
                    })
                }
            }
        }
        Ok(manifest)
    }

    /// Writes `MANIFEST.xwqc` into `dir`, atomically and durably: the text
    /// is staged to a temporary sibling, `sync_data`'d, renamed over the
    /// target, and the directory is fsync'd. A crash at any point leaves
    /// either the old manifest or the new one — never a torn mix — which
    /// is what lets the WAL checkpoint treat the manifest as a consistent
    /// baseline.
    pub fn write_dir(&self, dir: impl AsRef<Path>) -> Result<(), ManifestError> {
        crate::wal::atomic_write(dir.as_ref(), MANIFEST_FILE, self.to_text().as_bytes())
            .map_err(ManifestError::Io)
    }

    /// Reads `MANIFEST.xwqc` from `dir`.
    pub fn read_dir(dir: impl AsRef<Path>) -> Result<Self, ManifestError> {
        let path = dir.as_ref().join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).map_err(ManifestError::Io)?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_text() {
        let mut m = Manifest::new();
        m.push("auctions", "auctions.xwqi", 1234).unwrap();
        m.push("people", "sub/people.xwqi", 9).unwrap();
        let re = Manifest::parse(&m.to_text()).unwrap();
        assert_eq!(re, m);
        assert_eq!(re.docs()[1].file, "sub/people.xwqi");
    }

    #[test]
    fn rejects_broken_input() {
        assert!(matches!(
            Manifest::parse(""),
            Err(ManifestError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("xwq-corpus 99\n"),
            Err(ManifestError::UnsupportedVersion(99))
        ));
        assert!(Manifest::parse("xwq-corpus 1\ndoc\tonly-two-fields\t1\n").is_err());
        assert!(Manifest::parse("xwq-corpus 1\ndoc\ta\ta.xwqi\tnot-a-number\n").is_err());
        assert!(
            Manifest::parse("xwq-corpus 1\ndoc\ta\ta.xwqi\t1\ndoc\ta\tb.xwqi\t2\n").is_err(),
            "duplicate names must be rejected at parse time"
        );
        let mut m = Manifest::new();
        assert!(m.push("tab\tname", "f.xwqi", 1).is_err());
        assert!(m.push("", "f.xwqi", 1).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = Manifest::parse("xwq-corpus 1\n# a comment\n\ndoc\td\td.xwqi\t5\n").unwrap();
        assert_eq!(m.docs().len(), 1);
        assert_eq!(m.docs()[0].nodes, 5);
    }
}
