//! `xwq-shard` — the sharded multi-document serving tier.
//!
//! Everything below this crate serves *one document at a time*: the
//! `.xwqi` store persists a single index, a [`xwq_store::Session`] batches
//! queries against one catalog with one worker pool. This crate is the
//! corpus layer on top:
//!
//! * **[`Corpus`]** — a catalog of documents spread over a fixed set of
//!   [`xwq_store::DocumentStore`] shards by a pluggable
//!   [`PlacementPolicy`] (round-robin or size-balanced). Corpus
//!   directories built by `xwq corpus build` are a [`Manifest`] plus one
//!   `.xwqi` per document, opened zero-copy via mmap so shards share the
//!   page cache.
//!
//! * **[`ShardedSession`]** — corpus-wide query serving with **pinned
//!   worker pools**: each shard owns its own condvar-parked long-lived
//!   workers, its own compiled-query LRU, and per-worker
//!   [`xwq_core::EvalScratch`] state, none of which ever crosses a shard
//!   boundary. [`ShardedSession::query_corpus`] fans one query out over
//!   all (or a subset of) documents and merges per-document outcomes in
//!   deterministic name order; a bounded admission queue sheds load when
//!   too many callers pile up ([`CorpusError::Overloaded`]).
//!
//! * **Durability** — a corpus opened from a directory is mutable and
//!   crash-safe: [`Corpus::add_durable`] / [`Corpus::replace`] /
//!   [`Corpus::remove`] commit through a checksummed write-ahead log
//!   (`MANIFEST.wal`, see [`mod@wal`]) before touching the in-memory
//!   catalog, [`Corpus::open_dir`] replays and repairs after a crash, and
//!   superseded artifacts are reclaimed by epoch-based GC ([`mod@gc`])
//!   only once in-flight readers drain and a [`Corpus::checkpoint`] seals
//!   the change.
//!
//! Shard→worker affinity being structural (a worker thread belongs to
//! exactly one shard for its whole life) is what makes later NUMA binding
//! a local change: pin each shard's workers to the node that holds its
//! mapped pages, and nothing above this crate moves.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use xwq_shard::{Corpus, PlacementPolicy, ShardedSession};
//! use xwq_core::Strategy;
//! use xwq_index::TopologyKind;
//!
//! let corpus = Corpus::new(2, PlacementPolicy::SizeBalanced);
//! corpus.add_xml("a", "<r><x/><x><y/></x></r>", TopologyKind::Array)?;
//! corpus.add_xml("b", "<r><x><y/></x></r>", TopologyKind::Succinct)?;
//!
//! let session = ShardedSession::new(Arc::new(corpus), 2);
//! let out = session.query_corpus("//x[y]", Strategy::Auto)?;
//! let counts: Vec<(&str, usize)> = out
//!     .iter()
//!     .map(|o| (o.doc.as_str(), o.result.as_ref().unwrap().nodes.len()))
//!     .collect();
//! assert_eq!(counts, vec![("a", 1), ("b", 1)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod corpus;
pub mod gc;
mod manifest;
mod session;
pub mod sync;
pub mod wal;

pub use corpus::{Corpus, CorpusError, DurableEntry, PlacementPolicy, RecoveryStats, ShardLoad};
pub use gc::{EpochGc, EpochGuard};
pub use manifest::{Manifest, ManifestDoc, ManifestError, MANIFEST_FILE, MANIFEST_VERSION};
pub use session::{AdmissionConfig, AdmissionStats, DocOutcome, ShardedConfig, ShardedSession};
pub use wal::{FailPoint, FaultPlan, WalError, WalOp, WalRecord};
