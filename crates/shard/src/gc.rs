//! Epoch-based reclamation for superseded `.xwqi` artifacts.
//!
//! A durable `replace` (or `remove`) retires the old generation's artifact
//! file, but two parties may still need its bytes:
//!
//! * **In-flight readers.** Corpus documents are served from memory maps;
//!   unlinking a mapped file is safe on unix, but the corpus promises the
//!   stronger property that a reader holding a guard taken *before* the
//!   replace still sees the old generation byte-identically. Each
//!   [`ShardedSession`](crate::ShardedSession) request pins the current
//!   epoch for its whole fan-out; a retirement bumps the epoch, and a
//!   retired file is only reclaimable once every guard from before its
//!   retirement has dropped.
//!
//! * **Crash recovery.** Until the superseding op is folded into a
//!   durable checkpoint (manifest rewrite + WAL reset), a power cut can
//!   leave a WAL prefix that ends *before* that op's record — recovery
//!   then lands on the pre-replace catalog, which still names the old
//!   artifact. So retired files also wait for a checkpoint before unlink.
//!
//! Unlink therefore requires **both**: the retire epoch has drained *and*
//! a checkpoint has sealed the superseding op. The accounting is a single
//! mutex around small maps — retirement and guard drop are rare next to
//! query work, and correctness beats lock-free cleverness here.

use crate::sync::{AtomicU64, Mutex, Ordering};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// A retired artifact awaiting reclamation.
#[derive(Debug)]
struct Retired {
    path: PathBuf,
    /// Epoch at the moment of retirement: guards pinned at an earlier
    /// epoch may still read this file.
    retire_epoch: u64,
    /// Set once a checkpoint has made the superseding op part of the
    /// manifest baseline, so no recoverable WAL prefix references us.
    checkpointed: bool,
}

#[derive(Debug, Default)]
struct GcState {
    /// Current epoch; bumped by every retirement.
    epoch: u64,
    /// Pin counts per epoch still held by live guards.
    active: BTreeMap<u64, usize>,
    retired: Vec<Retired>,
}

/// The corpus-wide artifact garbage collector. Cheap to share: readers
/// take one mutex per request to pin/unpin.
#[derive(Default)]
pub struct EpochGc {
    state: Mutex<GcState>,
    /// Relaxed everywhere (audit note): the epoch/pin/drain *protocol* lives
    /// entirely inside `state`'s mutex — there are no lock-free pin or drain
    /// pairs to order, so no Acquire/Release upgrade applies. This counter
    /// is a monotonic statistic bumped under that same mutex; readers get an
    /// eventually-consistent total and nothing branches on it.
    unlinked: AtomicU64,
    /// Opt-in telemetry: total artifacts reclaimed, wired by
    /// `Corpus::enable_telemetry`.
    unlinked_counter: OnceLock<Arc<xwq_obs::Counter>>,
}

impl fmt::Debug for EpochGc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().unwrap();
        f.debug_struct("EpochGc")
            .field("epoch", &state.epoch)
            .field("active_pins", &state.active.values().sum::<usize>())
            .field("pending", &state.retired.len())
            .field("unlinked", &self.unlinked.load(Ordering::Relaxed))
            .finish()
    }
}

/// Keeps every artifact generation visible as of the pin alive until
/// dropped. Dropping is when reclamation of drained epochs runs.
#[derive(Debug)]
pub struct EpochGuard {
    gc: Arc<EpochGc>,
    epoch: u64,
}

impl EpochGc {
    /// Pins the current epoch. Files retired *after* this call will not be
    /// unlinked while the guard lives.
    pub fn pin(self: &Arc<Self>) -> EpochGuard {
        let mut state = self.state.lock().unwrap();
        let epoch = state.epoch;
        *state.active.entry(epoch).or_insert(0) += 1;
        EpochGuard {
            gc: Arc::clone(self),
            epoch,
        }
    }

    /// Hands `path` to the collector and bumps the epoch. The file stays
    /// on disk until its epoch drains *and* a checkpoint seals it.
    pub fn retire(&self, path: PathBuf) {
        let mut state = self.state.lock().unwrap();
        let retire_epoch = state.epoch;
        state.epoch += 1;
        state.retired.push(Retired {
            path,
            retire_epoch,
            checkpointed: false,
        });
    }

    /// Marks every currently retired file as sealed by a checkpoint, then
    /// reclaims whatever has also drained. Called by `Corpus::checkpoint`
    /// after the manifest rewrite and WAL reset are durable.
    pub fn seal_and_collect(&self) {
        let mut state = self.state.lock().unwrap();
        for r in &mut state.retired {
            r.checkpointed = true;
        }
        Self::collect_locked(self, &mut state);
    }

    /// Number of retired files still waiting on an epoch drain or a
    /// checkpoint.
    pub fn pending(&self) -> usize {
        self.state.lock().unwrap().retired.len()
    }

    /// Total artifacts unlinked over this collector's lifetime.
    pub fn unlinked_total(&self) -> u64 {
        self.unlinked.load(Ordering::Relaxed)
    }

    /// Wires the reclaim counter (adds the pre-wiring total so the
    /// exported series starts correct).
    pub fn set_counter(&self, counter: Arc<xwq_obs::Counter>) {
        counter.add(self.unlinked.load(Ordering::Relaxed));
        let _ = self.unlinked_counter.set(counter);
    }

    fn collect_locked(&self, state: &mut GcState) {
        // A retired file is reclaimable when no live guard predates its
        // retirement (oldest pinned epoch >= retire_epoch ⇒ every holder
        // pinned after the replace and sees the new generation) and a
        // checkpoint has sealed it.
        let oldest_pin = state.active.keys().next().copied();
        let mut kept = Vec::with_capacity(state.retired.len());
        for r in state.retired.drain(..) {
            let drained = oldest_pin.is_none_or(|oldest| oldest > r.retire_epoch);
            if drained && r.checkpointed {
                // Missing-file errors are fine: a previous crash may have
                // been cut between unlink and our bookkeeping.
                let _ = std::fs::remove_file(&r.path);
                self.unlinked.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = self.unlinked_counter.get() {
                    c.inc();
                }
            } else {
                kept.push(r);
            }
        }
        state.retired = kept;
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        let mut state = self.gc.state.lock().unwrap();
        if let Some(n) = state.active.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                state.active.remove(&self.epoch);
            }
        }
        self.gc.collect_locked(&mut state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("xwq-gc-{tag}-{}", std::process::id()));
        std::fs::write(&path, b"artifact bytes").unwrap();
        path
    }

    #[test]
    fn unlink_waits_for_both_epoch_drain_and_checkpoint() {
        let gc = Arc::new(EpochGc::default());
        let path = tmp_file("both");
        let guard = gc.pin();
        gc.retire(path.clone());

        // Guard alive, unsealed: file must stay.
        gc.seal_and_collect();
        assert!(path.exists(), "live pre-retire guard must keep the file");

        drop(guard);
        assert!(!path.exists(), "drain + checkpoint should reclaim");
        assert_eq!(gc.unlinked_total(), 1);
    }

    #[test]
    fn checkpoint_alone_is_not_enough_and_drain_alone_is_not_enough() {
        let gc = Arc::new(EpochGc::default());

        // Drain alone: no checkpoint yet.
        let path = tmp_file("drain");
        gc.retire(path.clone());
        // No guards at all — epoch is trivially drained.
        assert!(path.exists(), "unsealed file must survive a drain");
        assert_eq!(gc.pending(), 1);
        gc.seal_and_collect();
        assert!(!path.exists());

        // Guards pinned *after* retirement do not block reclamation.
        let path2 = tmp_file("post-pin");
        gc.retire(path2.clone());
        let late = gc.pin();
        gc.seal_and_collect();
        assert!(!path2.exists(), "post-retire guard sees the new generation");
        drop(late);
    }

    #[test]
    fn multiple_generations_reclaim_independently() {
        let gc = Arc::new(EpochGc::default());
        let old = tmp_file("gen-old");
        let new = tmp_file("gen-new");

        gc.retire(old.clone()); // epoch 0 -> 1
        let guard = gc.pin(); // pins epoch 1: after `old`, before `new`
        gc.retire(new.clone()); // epoch 1 -> 2
        gc.seal_and_collect();

        assert!(!old.exists(), "old predates the guard's pin — reclaimable");
        assert!(new.exists(), "guard may still read the second retiree");
        drop(guard);
        assert!(!new.exists());
        assert_eq!(gc.unlinked_total(), 2);
    }
}

/// Exhaustive model check of the pin/retire/seal protocol (built only
/// under `RUSTFLAGS="--cfg model"`, where the `crate::sync` mutex is the
/// `xwq_verify` shim). The serial tests above fix the interleaving by
/// construction; here the checker constructs *every* interleaving of a
/// reader and a retiring writer within the preemption bound.
#[cfg(all(test, model))]
mod model_tests {
    use super::*;
    use crate::sync::{thread as sync_thread, AtomicBool};

    #[test]
    fn model_no_unlink_while_a_pre_retire_guard_is_pinned() {
        let config = xwq_verify::Config {
            preemption_bound: Some(2),
            ..xwq_verify::Config::default()
        };
        let report = xwq_verify::check("gc-pin-vs-retire", config, || {
            let gc = Arc::new(EpochGc::default());
            let path =
                std::env::temp_dir().join(format!("xwq-model-gc-pin-{}", std::process::id()));
            std::fs::write(&path, b"artifact bytes").unwrap();
            // Raised by the writer *before* it retires, so a reader that
            // still observes `false` after pinning knows its pin strictly
            // precedes the retirement.
            let retiring = Arc::new(AtomicBool::new(false));

            let reader = {
                let gc = Arc::clone(&gc);
                let path = path.clone();
                let retiring = Arc::clone(&retiring);
                sync_thread::spawn(move || {
                    let guard = gc.pin();
                    let pinned_first = !retiring.load(Ordering::Acquire);
                    if pinned_first {
                        assert!(path.exists(), "pre-retire pin must keep the file");
                    }
                    // Give the scheduler a point to run the writer's whole
                    // retire + seal between our pin and our re-check.
                    sync_thread::yield_now();
                    if pinned_first {
                        assert!(path.exists(), "file unlinked under a live pre-retire guard");
                    }
                    drop(guard);
                })
            };
            let writer = {
                let gc = Arc::clone(&gc);
                let path = path.clone();
                let retiring = Arc::clone(&retiring);
                sync_thread::spawn(move || {
                    retiring.store(true, Ordering::Release);
                    gc.retire(path);
                    gc.seal_and_collect();
                })
            };
            reader.join().unwrap();
            writer.join().unwrap();
            // Whatever the interleaving, drain + checkpoint both happened
            // by now: the artifact is reclaimed exactly once.
            assert!(!path.exists(), "drained + sealed artifact must be gone");
            assert_eq!(gc.unlinked_total(), 1);
            assert_eq!(gc.pending(), 0);
        });
        // A floor on the explored-schedule count: if the cfg wiring ever
        // degrades the shims to passthrough, exploration collapses to one
        // schedule and this catches it.
        assert!(report.schedules > 50, "exploration collapsed: {report:?}");
        assert!(report.complete, "schedule tree exhausted: {report:?}");
    }
}
