//! The [`Corpus`]: a catalog of documents spread over a fixed set of
//! shards.
//!
//! A corpus owns `N` independent [`DocumentStore`] shards. Every document
//! registered with the corpus is placed on exactly one shard by the
//! corpus's [`PlacementPolicy`] and stays there for its lifetime — the
//! doc→shard mapping is what [`crate::ShardedSession`] workers pin to.
//! Shards are ordinary stores: several corpora (or several processes)
//! opening the same `.xwqi` files via [`DocumentStore::open_mmap`] share
//! the kernel page cache, which is what makes per-shard serving cheap —
//! a shard adds affinity, not a copy.
//!
//! # Durability
//!
//! A corpus opened from a directory ([`Corpus::open_dir`] /
//! [`Corpus::open_or_create_dir`]) is *durable*: catalog mutations go
//! through [`Corpus::add_durable`], [`Corpus::replace`] and
//! [`Corpus::remove`], each committed to the `MANIFEST.wal` write-ahead
//! log (see [`crate::wal`]) before the in-memory catalog moves. The
//! commit protocol per mutation:
//!
//! 1. stage the new `.xwqi` under `.stage.<artifact>` and `sync_data` it;
//! 2. append the WAL record, `sync_data` the log, fsync the directory
//!    — *this is the commit point*;
//! 3. rename the staged artifact over its final name and fsync the
//!    directory again.
//!
//! A crash at any byte leaves recovery ([`Corpus::open_dir`]) a torn tail
//! to truncate, a committed record whose rename it completes, or an
//! orphaned staged file to sweep — the catalog always lands on either the
//! pre-op or the post-op state. [`Corpus::checkpoint`] folds the log into
//! an atomically rewritten manifest and resets the log. Superseded
//! artifacts are reclaimed by epoch GC (see [`crate::gc`]) only after
//! both the readers that could see them have drained *and* a checkpoint
//! has sealed the superseding op.

use crate::gc::{EpochGc, EpochGuard};
use crate::manifest::{Manifest, ManifestError};
use crate::wal::{self, FailPoint, FaultPlan, WalAppender, WalError, WalOp, WalRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;
use xwq_index::TopologyKind;
use xwq_store::{DocumentStore, StoreError, StoredDocument};

/// How new documents are assigned to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Cycle through the shards in registration order: the shard with the
    /// fewest documents wins (ties to the lowest index). Best when
    /// documents are similar in size or arrival order should dominate.
    #[default]
    RoundRobin,
    /// The shard with the fewest total *nodes* wins (ties to the lowest
    /// index), so a few large documents don't pile onto one shard while
    /// small ones pad the rest. Best for heterogeneous corpora.
    SizeBalanced,
}

impl PlacementPolicy {
    /// Picks the shard for a document of `doc_nodes` nodes given the
    /// current per-shard loads. `loads` is never empty.
    pub fn place(self, loads: &[ShardLoad], doc_nodes: usize) -> usize {
        let _ = doc_nodes; // both built-in policies only look at loads
        let key = |l: &ShardLoad| match self {
            PlacementPolicy::RoundRobin => l.docs,
            PlacementPolicy::SizeBalanced => l.nodes,
        };
        loads
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (key(l), *i))
            .map(|(i, _)| i)
            .expect("corpus has at least one shard")
    }

    /// The CLI token for this policy.
    pub fn token(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::SizeBalanced => "size-balanced",
        }
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "rr" => Ok(PlacementPolicy::RoundRobin),
            "size-balanced" | "size" => Ok(PlacementPolicy::SizeBalanced),
            other => Err(format!(
                "unknown placement policy {other:?} (expected round-robin|size-balanced)"
            )),
        }
    }
}

/// What one shard currently holds (placement input + observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Documents registered on this shard.
    pub docs: usize,
    /// Total nodes across those documents.
    pub nodes: usize,
}

/// Errors from corpus operations.
#[derive(Debug)]
pub enum CorpusError {
    /// A document with this name is already in the corpus.
    DuplicateDocument(String),
    /// The request named a document the corpus does not have.
    UnknownDocument(String),
    /// The underlying shard store rejected the operation.
    Store(StoreError),
    /// Reading or writing the corpus manifest failed.
    Manifest(ManifestError),
    /// An operation on one named document failed (context wrapper, so a
    /// multi-file corpus open names the artifact that broke).
    Doc {
        /// The document whose artifact or registration failed.
        name: String,
        /// What went wrong.
        source: Box<CorpusError>,
    },
    /// The admission queue is full (active + waiting callers at capacity),
    /// or a waiter's admission deadline expired.
    Overloaded {
        /// Concurrent `query_corpus` calls currently being served.
        active: usize,
        /// Callers parked waiting for an admission slot.
        waiting: usize,
    },
    /// A durable mutation was requested on a corpus not opened from a
    /// directory (no WAL to commit to).
    NotDurable,
    /// The document name cannot be used as an on-disk artifact stem
    /// (empty, contains a path separator / tab / newline, or starts with
    /// a dot).
    BadName(String),
    /// A previous durable commit failed partway; the in-process writer is
    /// poisoned and the corpus must be reopened to recover.
    Broken,
    /// A filesystem operation in the commit or recovery path failed.
    Io(std::io::Error),
    /// Reading, truncating or appending the write-ahead log failed.
    Wal(WalError),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::DuplicateDocument(d) => write!(f, "document {d:?} already in corpus"),
            CorpusError::UnknownDocument(d) => write!(f, "no document named {d:?} in corpus"),
            CorpusError::Store(e) => write!(f, "{e}"),
            CorpusError::Manifest(e) => write!(f, "{e}"),
            CorpusError::Doc { name, source } => write!(f, "document {name:?}: {source}"),
            CorpusError::Overloaded { active, waiting } => write!(
                f,
                "corpus overloaded: {active} active and {waiting} waiting callers at capacity"
            ),
            CorpusError::NotDurable => write!(
                f,
                "corpus was not opened from a directory; durable mutations need a WAL"
            ),
            CorpusError::BadName(n) => write!(
                f,
                "document name {n:?} unusable as an artifact stem (empty, path separator, \
                 control character, or leading dot)"
            ),
            CorpusError::Broken => write!(
                f,
                "a previous durable commit failed; reopen the corpus directory to recover"
            ),
            CorpusError::Io(e) => write!(f, "corpus i/o: {e}"),
            CorpusError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Store(e) => Some(e),
            CorpusError::Manifest(e) => Some(e),
            CorpusError::Doc { source, .. } => Some(source),
            CorpusError::Io(e) => Some(e),
            CorpusError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CorpusError {
    fn from(e: StoreError) -> Self {
        CorpusError::Store(e)
    }
}

impl From<ManifestError> for CorpusError {
    fn from(e: ManifestError) -> Self {
        CorpusError::Manifest(e)
    }
}

/// The mutable catalog state: doc name → shard, plus per-shard loads.
/// A `BTreeMap` keeps document iteration in name order, which is what
/// makes corpus-wide results deterministic regardless of shard layout.
struct Catalog {
    placements: BTreeMap<String, usize>,
    loads: Vec<ShardLoad>,
}

/// One durable catalog row: the artifact currently backing a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableEntry {
    /// Artifact file name, relative to the corpus directory.
    pub file: String,
    /// Node count of the document.
    pub nodes: u64,
    /// Generation stamp of the mutation that produced this artifact.
    pub gen: u64,
}

/// What recovery did while opening a corpus directory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records replayed over the manifest baseline.
    pub replayed_ops: u64,
    /// Bytes dropped when truncating a torn WAL tail.
    pub dropped_bytes: u64,
    /// True when the WAL had a torn tail (crash signature).
    pub torn: bool,
    /// Committed-but-unrenamed staged artifacts whose rename recovery
    /// finished.
    pub completed_renames: u64,
    /// Orphaned staged or unreferenced artifact files deleted.
    pub swept_files: u64,
}

/// The single-writer durable state behind a directory-backed corpus: the
/// WAL appender plus the on-disk catalog image it maintains. One mutex
/// serializes all mutations — the WAL is single-writer by design.
struct DurableState {
    dir: PathBuf,
    /// Lazily opened so read-only uses never create or touch the log; also
    /// dropped after a checkpoint swaps the log file, and after a fault
    /// plan changes, so the next commit reopens the real current file.
    appender: Option<WalAppender>,
    entries: BTreeMap<String, DurableEntry>,
    next_gen: u64,
    ops_since_checkpoint: u64,
    /// Set when a commit fails partway: the on-disk log may hold a torn
    /// tail, so further durable writes are refused until a reopen recovers.
    broken: bool,
    plan: Option<Arc<FaultPlan>>,
}

impl DurableState {
    fn appender(&mut self) -> Result<&mut WalAppender, CorpusError> {
        if self.appender.is_none() {
            self.appender =
                Some(WalAppender::open(&self.dir, self.plan.as_ref()).map_err(CorpusError::Wal)?);
        }
        Ok(self.appender.as_mut().expect("just opened"))
    }
}

/// Opt-in metric handles, wired once by [`Corpus::enable_telemetry`].
#[derive(Default)]
struct CorpusTelemetry {
    wal_commit: OnceLock<Arc<xwq_obs::LatencyHisto>>,
}

/// True if `name` can be a durable document name. Stricter than the
/// manifest's field check: the name becomes an artifact file stem
/// (`<name>.g<gen>.xwqi`), so path separators and leading dots (which
/// would collide with `.stage.*` staging names) are out too.
fn valid_doc_name(name: &str) -> bool {
    !name.is_empty() && !name.starts_with('.') && !name.contains(['\t', '\n', '\r', '/', '\\'])
}

/// Generation stamp embedded in a durable artifact name
/// (`<name>.g<gen>.xwqi`), or 0 for pre-durability artifacts.
fn parse_gen(file: &str) -> u64 {
    file.strip_suffix(".xwqi")
        .and_then(|s| s.rsplit_once(".g"))
        .and_then(|(_, g)| g.parse().ok())
        .unwrap_or(0)
}

/// A catalog of documents spread over a fixed set of shards.
pub struct Corpus {
    shards: Vec<Arc<DocumentStore>>,
    policy: PlacementPolicy,
    catalog: RwLock<Catalog>,
    gc: Arc<EpochGc>,
    durable: Option<Mutex<DurableState>>,
    recovery: RecoveryStats,
    telemetry: CorpusTelemetry,
}

impl Corpus {
    /// An empty corpus with `shards` shards (at least one) and the given
    /// placement policy.
    pub fn new(shards: usize, policy: PlacementPolicy) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Arc::new(DocumentStore::new()))
                .collect(),
            policy,
            catalog: RwLock::new(Catalog {
                placements: BTreeMap::new(),
                loads: vec![ShardLoad::default(); shards],
            }),
            gc: Arc::new(EpochGc::default()),
            durable: None,
            recovery: RecoveryStats::default(),
            telemetry: CorpusTelemetry::default(),
        }
    }

    /// Opens a corpus directory: reads its manifest, **recovers** any
    /// write-ahead log on top of it, and memory-maps every per-document
    /// `.xwqi` — the zero-copy path, so shards mapping the same artifacts
    /// share the page cache. Recovery replays intact WAL records over the
    /// manifest baseline, truncates a torn tail, completes the rename of
    /// any committed-but-unrenamed artifact, and sweeps staged or
    /// unreferenced leftovers; what it did is in
    /// [`Corpus::recovery_stats`]. The result accepts durable mutations.
    pub fn open_dir(
        dir: impl AsRef<Path>,
        shards: usize,
        policy: PlacementPolicy,
    ) -> Result<Self, CorpusError> {
        let dir = dir.as_ref();
        let manifest = Manifest::read_dir(dir)?;
        let scan = wal::recover(dir).map_err(CorpusError::Wal)?;

        let mut stats = RecoveryStats::default();
        if let Some(t) = &scan.torn {
            stats.torn = true;
            stats.dropped_bytes = t.dropped_bytes;
        }

        // Manifest baseline, then idempotent replay. `referenced` tracks
        // every artifact any surviving WAL record names — those must stay
        // on disk even when replaced-then-removed later, because recovery
        // from a *prefix* of this same log (a later crash) can land on an
        // intermediate catalog that still needs them.
        let mut entries: BTreeMap<String, DurableEntry> = manifest
            .docs()
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    DurableEntry {
                        file: d.file.clone(),
                        nodes: d.nodes as u64,
                        gen: parse_gen(&d.file),
                    },
                )
            })
            .collect();
        let mut referenced: BTreeSet<String> = entries.values().map(|e| e.file.clone()).collect();
        let mut next_gen = entries.values().map(|e| e.gen + 1).max().unwrap_or(1);
        let mut ops_since_checkpoint = 0;
        for rec in &scan.records {
            match &rec.op {
                WalOp::AddDoc { name, file, nodes } | WalOp::ReplaceDoc { name, file, nodes } => {
                    referenced.insert(file.clone());
                    entries.insert(
                        name.clone(),
                        DurableEntry {
                            file: file.clone(),
                            nodes: *nodes,
                            gen: rec.gen,
                        },
                    );
                    stats.replayed_ops += 1;
                    ops_since_checkpoint += 1;
                }
                WalOp::RemoveDoc { name } => {
                    entries.remove(name);
                    stats.replayed_ops += 1;
                    ops_since_checkpoint += 1;
                }
                WalOp::Checkpoint => {}
            }
            next_gen = next_gen.max(rec.gen + 1);
        }

        // A commit that crashed between the WAL record and the rename left
        // the artifact under its staging name; finish the rename.
        let mut renamed = false;
        for file in &referenced {
            let target = dir.join(file);
            let staged = dir.join(format!(".stage.{file}"));
            if !target.exists() && staged.exists() {
                std::fs::rename(&staged, &target).map_err(CorpusError::Io)?;
                stats.completed_renames += 1;
                renamed = true;
            }
        }
        if renamed {
            wal::fsync_dir(dir).map_err(CorpusError::Io)?;
        }

        // Sweep: any remaining staged file is either a duplicate of a
        // completed rename or belongs to a record that never committed;
        // any `.xwqi` no manifest row or WAL record names is an orphan.
        for item in std::fs::read_dir(dir).map_err(CorpusError::Io)? {
            let item = item.map_err(CorpusError::Io)?;
            let fname = item.file_name().to_string_lossy().into_owned();
            let orphan = fname.starts_with(".stage.")
                || (fname.ends_with(".xwqi") && !referenced.contains(&fname))
                // A plan sidecar is only meaningful next to its index;
                // sweep any whose `.xwqi` is gone or unreferenced.
                || fname.strip_suffix(".xwqp").is_some_and(|stem| {
                    !referenced.contains(&format!("{stem}.xwqi"))
                });
            if orphan {
                std::fs::remove_file(item.path()).map_err(CorpusError::Io)?;
                stats.swept_files += 1;
            }
        }

        let mut corpus = Self::new(shards, policy);
        corpus.recovery = stats;
        corpus.durable = Some(Mutex::new(DurableState {
            dir: dir.to_path_buf(),
            appender: None,
            entries: entries.clone(),
            next_gen,
            ops_since_checkpoint,
            broken: false,
            plan: None,
        }));
        for (name, e) in &entries {
            corpus
                .add_mmap(name, dir.join(&e.file))
                .map_err(|err| CorpusError::Doc {
                    name: name.clone(),
                    source: Box::new(err),
                })?;
        }
        Ok(corpus)
    }

    /// [`Corpus::open_dir`], creating the directory (with an empty durable
    /// manifest) when it does not hold a corpus yet.
    pub fn open_or_create_dir(
        dir: impl AsRef<Path>,
        shards: usize,
        policy: PlacementPolicy,
    ) -> Result<Self, CorpusError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(CorpusError::Io)?;
        if !dir.join(crate::manifest::MANIFEST_FILE).exists() {
            Manifest::new().write_dir(dir)?;
        }
        Self::open_dir(dir, shards, policy)
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The store behind shard `s` (for direct lookups / observability).
    pub fn shard_store(&self, s: usize) -> &Arc<DocumentStore> {
        &self.shards[s]
    }

    /// Current per-shard loads, indexed by shard.
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .loads
            .clone()
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .len()
    }

    /// True if the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All document names, sorted — the deterministic corpus order every
    /// fan-out merges back into.
    pub fn doc_names(&self) -> Vec<String> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .keys()
            .cloned()
            .collect()
    }

    /// The shard holding `name`, if the corpus has it.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .get(name)
            .copied()
    }

    /// Looks a document up through its shard.
    pub fn get(&self, name: &str) -> Option<Arc<StoredDocument>> {
        let shard = self.shard_of(name)?;
        self.shards[shard].get(name)
    }

    /// `(name, shard)` pairs in name order (the fan-out work list).
    pub(crate) fn placements(&self) -> Vec<(String, usize)> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .iter()
            .map(|(n, &s)| (n.clone(), s))
            .collect()
    }

    /// Places a document of `nodes` nodes, reserving its slot in the
    /// catalog. Returns the chosen shard.
    fn place(&self, name: &str, nodes: usize) -> Result<usize, CorpusError> {
        let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
        if catalog.placements.contains_key(name) {
            return Err(CorpusError::DuplicateDocument(name.to_string()));
        }
        let shard = self.policy.place(&catalog.loads, nodes);
        catalog.placements.insert(name.to_string(), shard);
        catalog.loads[shard].docs += 1;
        catalog.loads[shard].nodes += nodes;
        Ok(shard)
    }

    /// Undoes [`Self::place`] when the shard-store registration fails.
    fn unplace(&self, name: &str, shard: usize, nodes: usize) {
        let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
        catalog.placements.remove(name);
        catalog.loads[shard].docs -= 1;
        catalog.loads[shard].nodes -= nodes;
    }

    /// Registers an already-loaded document + index pair on the shard the
    /// policy picks. All `add_*` entry points funnel through here.
    pub fn add_prebuilt(
        &self,
        name: &str,
        doc: xwq_xml::Document,
        index: xwq_index::TreeIndex,
    ) -> Result<usize, CorpusError> {
        self.add_prebuilt_inner(name, doc, index, None)
    }

    fn add_prebuilt_inner(
        &self,
        name: &str,
        doc: xwq_xml::Document,
        index: xwq_index::TreeIndex,
        plans: Option<std::sync::Arc<xwq_store::PlanSet>>,
    ) -> Result<usize, CorpusError> {
        let nodes = doc.len();
        let shard = self.place(name, nodes)?;
        match self.shards[shard].insert_prebuilt_with_plans(name, doc, index, plans) {
            Ok(_) => Ok(shard),
            Err(e) => {
                self.unplace(name, shard, nodes);
                Err(e.into())
            }
        }
    }

    /// Parses, indexes and places an XML document. Returns its shard.
    pub fn add_xml(
        &self,
        name: &str,
        xml: &str,
        topology: TopologyKind,
    ) -> Result<usize, CorpusError> {
        let doc = xwq_xml::parse(xml).map_err(|e| CorpusError::Store(StoreError::Parse(e)))?;
        let index = xwq_index::TreeIndex::build_with(&doc, topology);
        self.add_prebuilt(name, doc, index)
    }

    /// Memory-maps a `.xwqi` file and places it (the zero-copy load —
    /// what [`Self::open_dir`] uses). Returns its shard.
    pub fn add_mmap(&self, name: &str, path: impl AsRef<Path>) -> Result<usize, CorpusError> {
        // A validated `.xwqp` sidecar rides along onto whatever shard the
        // document lands on, so per-shard sessions start warm too.
        let plans = xwq_store::load_sidecar_plans(path.as_ref());
        let (doc, index) = xwq_store::read_index_file_mmap(path).map_err(StoreError::Format)?;
        self.add_prebuilt_inner(name, doc, index, plans)
    }

    /// Reads a `.xwqi` file into owned memory and places it. Returns its
    /// shard.
    pub fn add_index_file(&self, name: &str, path: impl AsRef<Path>) -> Result<usize, CorpusError> {
        let (doc, index) = xwq_store::read_index_file(path).map_err(StoreError::Format)?;
        self.add_prebuilt(name, doc, index)
    }

    // ── durability ─────────────────────────────────────────────────────

    /// True when this corpus is backed by a directory and accepts durable
    /// mutations.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The backing directory of a durable corpus (`None` when in-memory).
    pub fn dir(&self) -> Option<PathBuf> {
        self.durable
            .as_ref()
            .map(|d| d.lock().expect("durable state poisoned").dir.clone())
    }

    /// What recovery did when this corpus was opened (all zeros for a
    /// clean open or an in-memory corpus).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.clone()
    }

    /// The durable catalog: `(name, entry)` rows in name order. Empty for
    /// an in-memory corpus.
    pub fn durable_entries(&self) -> Vec<(String, DurableEntry)> {
        match &self.durable {
            Some(durable) => {
                let state = durable.lock().expect("durable state poisoned");
                state
                    .entries
                    .iter()
                    .map(|(n, e)| (n.clone(), e.clone()))
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// WAL records appended since the last checkpoint (replayed ones
    /// count — they are still in the log).
    pub fn wal_ops_since_checkpoint(&self) -> u64 {
        match &self.durable {
            Some(durable) => {
                durable
                    .lock()
                    .expect("durable state poisoned")
                    .ops_since_checkpoint
            }
            None => 0,
        }
    }

    /// Pins the artifact GC epoch: files superseded *after* this call
    /// outlive the guard, so a reader holding it keeps seeing its
    /// generation byte-identically. [`crate::ShardedSession`] pins one per
    /// request automatically.
    pub fn pin(&self) -> EpochGuard {
        self.gc.pin()
    }

    /// The artifact garbage collector (observability and tests).
    pub fn gc(&self) -> &Arc<EpochGc> {
        &self.gc
    }

    /// Installs a fault plan on the durable I/O path (test/CI crash
    /// matrix): the next commit fails at `point`, leaving exactly the
    /// bytes a power cut there would.
    pub fn inject_fault(&self, point: FailPoint) -> Result<(), CorpusError> {
        let durable = self.durable.as_ref().ok_or(CorpusError::NotDurable)?;
        let mut state = durable.lock().expect("durable state poisoned");
        state.plan = Some(FaultPlan::new(point));
        state.appender = None; // reopen wrapped in the plan
        Ok(())
    }

    /// Removes any installed fault plan. Does *not* clear a broken-writer
    /// state — a failed commit still requires a reopen to recover.
    pub fn clear_fault(&self) {
        if let Some(durable) = &self.durable {
            let mut state = durable.lock().expect("durable state poisoned");
            state.plan = None;
            state.appender = None;
        }
    }

    /// Wires the durability metrics into `registry`: the
    /// `xwq_wal_commit_latency_ns` histogram, recovery counters
    /// (`xwq_wal_replayed_ops_total`, `xwq_wal_dropped_bytes_total`,
    /// `xwq_wal_torn_truncations_total`) and the GC reclaim counter
    /// (`xwq_gc_unlinked_artifacts_total`). Idempotent: second and later
    /// calls are no-ops, so the one-shot recovery totals are added once.
    pub fn enable_telemetry(&self, registry: &xwq_obs::Registry) {
        registry.describe(
            "xwq_wal_commit_latency_ns",
            "Durable WAL commit latency (append + sync_data + dir fsync)",
        );
        if self
            .telemetry
            .wal_commit
            .set(registry.histo("xwq_wal_commit_latency_ns"))
            .is_err()
        {
            return; // already wired
        }
        registry.describe(
            "xwq_wal_replayed_ops_total",
            "WAL records replayed over the manifest baseline at open",
        );
        registry
            .counter("xwq_wal_replayed_ops_total")
            .add(self.recovery.replayed_ops);
        registry.describe(
            "xwq_wal_dropped_bytes_total",
            "Bytes truncated from torn WAL tails at open",
        );
        registry
            .counter("xwq_wal_dropped_bytes_total")
            .add(self.recovery.dropped_bytes);
        registry.describe(
            "xwq_wal_torn_truncations_total",
            "Opens that found and truncated a torn WAL tail",
        );
        registry
            .counter("xwq_wal_torn_truncations_total")
            .add(self.recovery.torn as u64);
        registry.describe(
            "xwq_gc_unlinked_artifacts_total",
            "Superseded .xwqi artifacts reclaimed after epoch drain + checkpoint",
        );
        self.gc
            .set_counter(registry.counter("xwq_gc_unlinked_artifacts_total"));
    }

    /// Stages the artifact, commits the WAL record, renames — steps 1–3 of
    /// the commit protocol. Returns the new catalog row. On a commit-path
    /// failure the writer is poisoned ([`CorpusError::Broken`] thereafter)
    /// because the log may hold a torn tail only a reopen can repair.
    fn commit_artifact(
        &self,
        state: &mut DurableState,
        name: &str,
        doc: &xwq_xml::Document,
        index: &xwq_index::TreeIndex,
        replace: bool,
    ) -> Result<DurableEntry, CorpusError> {
        if state.broken {
            return Err(CorpusError::Broken);
        }
        if !valid_doc_name(name) {
            return Err(CorpusError::BadName(name.to_string()));
        }
        let bytes = xwq_store::serialize(doc, index)
            .map_err(|e| CorpusError::Store(StoreError::Format(e)))?;
        let gen = state.next_gen;
        let nodes = doc.len() as u64;
        let file = format!("{name}.g{gen}.xwqi");
        let staged = state.dir.join(format!(".stage.{file}"));

        // 1. Stage + sync_data. A failure here touched nothing durable —
        //    no poisoning, just clean up the partial staged file.
        if let Err(e) = wal::stage_write(&staged, &bytes, state.plan.as_ref()) {
            let _ = std::fs::remove_file(&staged);
            return Err(CorpusError::Io(e));
        }

        // 2. WAL commit — the commit point. On failure the log may be
        //    torn; keep the staged file (if the record did reach disk,
        //    recovery will finish the rename) and poison the writer.
        let record = WalRecord {
            gen,
            op: if replace {
                WalOp::ReplaceDoc {
                    name: name.to_string(),
                    file: file.clone(),
                    nodes,
                }
            } else {
                WalOp::AddDoc {
                    name: name.to_string(),
                    file: file.clone(),
                    nodes,
                }
            },
        };
        let t0 = Instant::now();
        let commit = state.appender()?.commit(&record);
        if let Err(e) = commit {
            state.broken = true;
            return Err(CorpusError::Io(e));
        }
        if let Some(h) = self.telemetry.wal_commit.get() {
            h.record(t0.elapsed().as_nanos() as u64);
        }

        // 3. Publish the artifact under its final name.
        let publish = std::fs::rename(&staged, state.dir.join(&file))
            .and_then(|()| wal::fsync_dir(&state.dir));
        if let Err(e) = publish {
            state.broken = true;
            return Err(CorpusError::Io(e));
        }

        state.next_gen += 1;
        state.ops_since_checkpoint += 1;
        Ok(DurableEntry { file, nodes, gen })
    }

    /// Durably adds a prebuilt document: its `.xwqi` artifact and WAL
    /// record are on disk (commit protocol above) before it is placed on a
    /// shard. Returns the shard.
    pub fn add_durable(
        &self,
        name: &str,
        doc: xwq_xml::Document,
        index: xwq_index::TreeIndex,
    ) -> Result<usize, CorpusError> {
        let durable = self.durable.as_ref().ok_or(CorpusError::NotDurable)?;
        let mut state = durable.lock().expect("durable state poisoned");
        if state.entries.contains_key(name) {
            return Err(CorpusError::DuplicateDocument(name.to_string()));
        }
        let entry = self.commit_artifact(&mut state, name, &doc, &index, false)?;
        state.entries.insert(name.to_string(), entry);
        self.add_prebuilt(name, doc, index)
    }

    /// Durably replaces a document with a new build. The old artifact is
    /// retired to epoch GC — readers pinned before the swap keep their
    /// generation, and the file is unlinked only after the epoch drains
    /// *and* a [`Corpus::checkpoint`] seals the replace. Returns the
    /// document's (unchanged) shard.
    pub fn replace(
        &self,
        name: &str,
        doc: xwq_xml::Document,
        index: xwq_index::TreeIndex,
    ) -> Result<usize, CorpusError> {
        let durable = self.durable.as_ref().ok_or(CorpusError::NotDurable)?;
        let mut state = durable.lock().expect("durable state poisoned");
        let Some(old) = state.entries.get(name).cloned() else {
            return Err(CorpusError::UnknownDocument(name.to_string()));
        };
        let entry = self.commit_artifact(&mut state, name, &doc, &index, true)?;
        state.entries.insert(name.to_string(), entry);
        let old_path = state.dir.join(&old.file);
        drop(state);

        let new_nodes = doc.len();
        let shard = {
            let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
            let shard = *catalog
                .placements
                .get(name)
                .ok_or_else(|| CorpusError::UnknownDocument(name.to_string()))?;
            self.shards[shard].remove(name);
            self.shards[shard].insert_prebuilt(name, doc, index)?;
            catalog.loads[shard].nodes += new_nodes;
            catalog.loads[shard].nodes -= old.nodes as usize;
            shard
        };
        self.gc.retire(old_path);
        Ok(shard)
    }

    /// Durably removes a document. Its artifact is retired to epoch GC
    /// (same drain + checkpoint rule as [`Corpus::replace`]).
    pub fn remove(&self, name: &str) -> Result<(), CorpusError> {
        let durable = self.durable.as_ref().ok_or(CorpusError::NotDurable)?;
        let mut state = durable.lock().expect("durable state poisoned");
        if state.broken {
            return Err(CorpusError::Broken);
        }
        let Some(old) = state.entries.get(name).cloned() else {
            return Err(CorpusError::UnknownDocument(name.to_string()));
        };
        let record = WalRecord {
            gen: state.next_gen,
            op: WalOp::RemoveDoc {
                name: name.to_string(),
            },
        };
        let t0 = Instant::now();
        let commit = state.appender()?.commit(&record);
        if let Err(e) = commit {
            state.broken = true;
            return Err(CorpusError::Io(e));
        }
        if let Some(h) = self.telemetry.wal_commit.get() {
            h.record(t0.elapsed().as_nanos() as u64);
        }
        state.next_gen += 1;
        state.ops_since_checkpoint += 1;
        state.entries.remove(name);
        let old_path = state.dir.join(&old.file);
        drop(state);

        {
            let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
            if let Some(shard) = catalog.placements.remove(name) {
                self.shards[shard].remove(name);
                catalog.loads[shard].docs -= 1;
                catalog.loads[shard].nodes -= old.nodes as usize;
            }
        }
        self.gc.retire(old_path);
        Ok(())
    }

    /// Folds the WAL into the manifest: rewrites `MANIFEST.xwqc`
    /// atomically and durably, resets the log to a single checkpoint
    /// record carrying the next generation, and lets epoch GC reclaim
    /// every artifact the checkpoint sealed (once readers drain).
    pub fn checkpoint(&self) -> Result<(), CorpusError> {
        let durable = self.durable.as_ref().ok_or(CorpusError::NotDurable)?;
        let mut state = durable.lock().expect("durable state poisoned");
        if state.broken {
            return Err(CorpusError::Broken);
        }
        let mut manifest = Manifest::new();
        for (name, e) in &state.entries {
            manifest.push(name, &e.file, e.nodes as usize)?;
        }
        manifest.write_dir(&state.dir)?;
        wal::reset(&state.dir, state.next_gen).map_err(CorpusError::Wal)?;
        // The appender's fd points at the pre-reset log inode; reopen
        // lazily on the next commit.
        state.appender = None;
        state.ops_since_checkpoint = 0;
        drop(state);
        self.gc.seal_and_collect();
        Ok(())
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("shards", &self.shard_count())
            .field("policy", &self.policy)
            .field("docs", &self.len())
            .field("loads", &self.loads())
            .field("durable", &self.is_durable())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_doc_counts() {
        let corpus = Corpus::new(3, PlacementPolicy::RoundRobin);
        for i in 0..7 {
            corpus
                .add_xml(&format!("d{i}"), "<r><x/></r>", TopologyKind::Array)
                .unwrap();
        }
        let loads = corpus.loads();
        let docs: Vec<usize> = loads.iter().map(|l| l.docs).collect();
        assert_eq!(docs.iter().sum::<usize>(), 7);
        assert!(docs.iter().all(|&d| d == 2 || d == 3), "{docs:?}");
    }

    #[test]
    fn size_balanced_prefers_the_lightest_shard() {
        let corpus = Corpus::new(2, PlacementPolicy::SizeBalanced);
        // One big document lands on shard 0 (empty tie → lowest index)…
        let big: String = format!("<r>{}</r>", "<x/>".repeat(200));
        assert_eq!(corpus.add_xml("big", &big, TopologyKind::Array).unwrap(), 0);
        // …then small documents all pile onto shard 1 until it catches up.
        for i in 0..5 {
            assert_eq!(
                corpus
                    .add_xml(&format!("s{i}"), "<r><x/></r>", TopologyKind::Array)
                    .unwrap(),
                1,
                "small doc {i} should avoid the heavy shard"
            );
        }
        let loads = corpus.loads();
        assert!(loads[0].nodes > loads[1].nodes);
        assert_eq!(loads[1].docs, 5);
    }

    #[test]
    fn duplicate_names_are_rejected_corpus_wide() {
        // Even when the duplicate would land on a *different* shard.
        let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
        corpus.add_xml("d", "<r/>", TopologyKind::Array).unwrap();
        assert!(matches!(
            corpus.add_xml("d", "<r/>", TopologyKind::Array),
            Err(CorpusError::DuplicateDocument(_))
        ));
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn doc_names_are_sorted_regardless_of_insertion_order() {
        let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
        for name in ["zeta", "alpha", "mid"] {
            corpus.add_xml(name, "<r/>", TopologyKind::Array).unwrap();
        }
        assert_eq!(corpus.doc_names(), vec!["alpha", "mid", "zeta"]);
        assert!(corpus.get("alpha").is_some());
        assert!(corpus.get("nope").is_none());
    }
}
