//! The [`Corpus`]: a catalog of documents spread over a fixed set of
//! shards.
//!
//! A corpus owns `N` independent [`DocumentStore`] shards. Every document
//! registered with the corpus is placed on exactly one shard by the
//! corpus's [`PlacementPolicy`] and stays there for its lifetime — the
//! doc→shard mapping is what [`crate::ShardedSession`] workers pin to.
//! Shards are ordinary stores: several corpora (or several processes)
//! opening the same `.xwqi` files via [`DocumentStore::open_mmap`] share
//! the kernel page cache, which is what makes per-shard serving cheap —
//! a shard adds affinity, not a copy.

use crate::manifest::{Manifest, ManifestError};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, RwLock};
use xwq_index::TopologyKind;
use xwq_store::{DocumentStore, StoreError, StoredDocument};

/// How new documents are assigned to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Cycle through the shards in registration order: the shard with the
    /// fewest documents wins (ties to the lowest index). Best when
    /// documents are similar in size or arrival order should dominate.
    #[default]
    RoundRobin,
    /// The shard with the fewest total *nodes* wins (ties to the lowest
    /// index), so a few large documents don't pile onto one shard while
    /// small ones pad the rest. Best for heterogeneous corpora.
    SizeBalanced,
}

impl PlacementPolicy {
    /// Picks the shard for a document of `doc_nodes` nodes given the
    /// current per-shard loads. `loads` is never empty.
    pub fn place(self, loads: &[ShardLoad], doc_nodes: usize) -> usize {
        let _ = doc_nodes; // both built-in policies only look at loads
        let key = |l: &ShardLoad| match self {
            PlacementPolicy::RoundRobin => l.docs,
            PlacementPolicy::SizeBalanced => l.nodes,
        };
        loads
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (key(l), *i))
            .map(|(i, _)| i)
            .expect("corpus has at least one shard")
    }

    /// The CLI token for this policy.
    pub fn token(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::SizeBalanced => "size-balanced",
        }
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "rr" => Ok(PlacementPolicy::RoundRobin),
            "size-balanced" | "size" => Ok(PlacementPolicy::SizeBalanced),
            other => Err(format!(
                "unknown placement policy {other:?} (expected round-robin|size-balanced)"
            )),
        }
    }
}

/// What one shard currently holds (placement input + observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Documents registered on this shard.
    pub docs: usize,
    /// Total nodes across those documents.
    pub nodes: usize,
}

/// Errors from corpus operations.
#[derive(Debug)]
pub enum CorpusError {
    /// A document with this name is already in the corpus.
    DuplicateDocument(String),
    /// The request named a document the corpus does not have.
    UnknownDocument(String),
    /// The underlying shard store rejected the operation.
    Store(StoreError),
    /// Reading or writing the corpus manifest failed.
    Manifest(ManifestError),
    /// An operation on one named document failed (context wrapper, so a
    /// multi-file corpus open names the artifact that broke).
    Doc {
        /// The document whose artifact or registration failed.
        name: String,
        /// What went wrong.
        source: Box<CorpusError>,
    },
    /// The admission queue is full (active + waiting callers at capacity).
    Overloaded {
        /// Concurrent `query_corpus` calls currently being served.
        active: usize,
        /// Callers parked waiting for an admission slot.
        waiting: usize,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::DuplicateDocument(d) => write!(f, "document {d:?} already in corpus"),
            CorpusError::UnknownDocument(d) => write!(f, "no document named {d:?} in corpus"),
            CorpusError::Store(e) => write!(f, "{e}"),
            CorpusError::Manifest(e) => write!(f, "{e}"),
            CorpusError::Doc { name, source } => write!(f, "document {name:?}: {source}"),
            CorpusError::Overloaded { active, waiting } => write!(
                f,
                "corpus overloaded: {active} active and {waiting} waiting callers at capacity"
            ),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Store(e) => Some(e),
            CorpusError::Manifest(e) => Some(e),
            CorpusError::Doc { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for CorpusError {
    fn from(e: StoreError) -> Self {
        CorpusError::Store(e)
    }
}

impl From<ManifestError> for CorpusError {
    fn from(e: ManifestError) -> Self {
        CorpusError::Manifest(e)
    }
}

/// The mutable catalog state: doc name → shard, plus per-shard loads.
/// A `BTreeMap` keeps document iteration in name order, which is what
/// makes corpus-wide results deterministic regardless of shard layout.
struct Catalog {
    placements: BTreeMap<String, usize>,
    loads: Vec<ShardLoad>,
}

/// A catalog of documents spread over a fixed set of shards.
pub struct Corpus {
    shards: Vec<Arc<DocumentStore>>,
    policy: PlacementPolicy,
    catalog: RwLock<Catalog>,
}

impl Corpus {
    /// An empty corpus with `shards` shards (at least one) and the given
    /// placement policy.
    pub fn new(shards: usize, policy: PlacementPolicy) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Arc::new(DocumentStore::new()))
                .collect(),
            policy,
            catalog: RwLock::new(Catalog {
                placements: BTreeMap::new(),
                loads: vec![ShardLoad::default(); shards],
            }),
        }
    }

    /// Opens a corpus directory produced by `xwq corpus build`: reads its
    /// manifest and memory-maps every per-document `.xwqi` — the zero-copy
    /// path, so shards mapping the same artifacts share the page cache.
    pub fn open_dir(
        dir: impl AsRef<Path>,
        shards: usize,
        policy: PlacementPolicy,
    ) -> Result<Self, CorpusError> {
        let dir = dir.as_ref();
        let manifest = Manifest::read_dir(dir)?;
        let corpus = Self::new(shards, policy);
        for entry in manifest.docs() {
            corpus
                .add_mmap(&entry.name, dir.join(&entry.file))
                .map_err(|e| CorpusError::Doc {
                    name: entry.name.clone(),
                    source: Box::new(e),
                })?;
        }
        Ok(corpus)
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The store behind shard `s` (for direct lookups / observability).
    pub fn shard_store(&self, s: usize) -> &Arc<DocumentStore> {
        &self.shards[s]
    }

    /// Current per-shard loads, indexed by shard.
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .loads
            .clone()
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .len()
    }

    /// True if the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All document names, sorted — the deterministic corpus order every
    /// fan-out merges back into.
    pub fn doc_names(&self) -> Vec<String> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .keys()
            .cloned()
            .collect()
    }

    /// The shard holding `name`, if the corpus has it.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .get(name)
            .copied()
    }

    /// Looks a document up through its shard.
    pub fn get(&self, name: &str) -> Option<Arc<StoredDocument>> {
        let shard = self.shard_of(name)?;
        self.shards[shard].get(name)
    }

    /// `(name, shard)` pairs in name order (the fan-out work list).
    pub(crate) fn placements(&self) -> Vec<(String, usize)> {
        self.catalog
            .read()
            .expect("corpus catalog poisoned")
            .placements
            .iter()
            .map(|(n, &s)| (n.clone(), s))
            .collect()
    }

    /// Places a document of `nodes` nodes, reserving its slot in the
    /// catalog. Returns the chosen shard.
    fn place(&self, name: &str, nodes: usize) -> Result<usize, CorpusError> {
        let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
        if catalog.placements.contains_key(name) {
            return Err(CorpusError::DuplicateDocument(name.to_string()));
        }
        let shard = self.policy.place(&catalog.loads, nodes);
        catalog.placements.insert(name.to_string(), shard);
        catalog.loads[shard].docs += 1;
        catalog.loads[shard].nodes += nodes;
        Ok(shard)
    }

    /// Undoes [`Self::place`] when the shard-store registration fails.
    fn unplace(&self, name: &str, shard: usize, nodes: usize) {
        let mut catalog = self.catalog.write().expect("corpus catalog poisoned");
        catalog.placements.remove(name);
        catalog.loads[shard].docs -= 1;
        catalog.loads[shard].nodes -= nodes;
    }

    /// Registers an already-loaded document + index pair on the shard the
    /// policy picks. All `add_*` entry points funnel through here.
    pub fn add_prebuilt(
        &self,
        name: &str,
        doc: xwq_xml::Document,
        index: xwq_index::TreeIndex,
    ) -> Result<usize, CorpusError> {
        let nodes = doc.len();
        let shard = self.place(name, nodes)?;
        match self.shards[shard].insert_prebuilt(name, doc, index) {
            Ok(_) => Ok(shard),
            Err(e) => {
                self.unplace(name, shard, nodes);
                Err(e.into())
            }
        }
    }

    /// Parses, indexes and places an XML document. Returns its shard.
    pub fn add_xml(
        &self,
        name: &str,
        xml: &str,
        topology: TopologyKind,
    ) -> Result<usize, CorpusError> {
        let doc = xwq_xml::parse(xml).map_err(|e| CorpusError::Store(StoreError::Parse(e)))?;
        let index = xwq_index::TreeIndex::build_with(&doc, topology);
        self.add_prebuilt(name, doc, index)
    }

    /// Memory-maps a `.xwqi` file and places it (the zero-copy load —
    /// what [`Self::open_dir`] uses). Returns its shard.
    pub fn add_mmap(&self, name: &str, path: impl AsRef<Path>) -> Result<usize, CorpusError> {
        let (doc, index) = xwq_store::read_index_file_mmap(path).map_err(StoreError::Format)?;
        self.add_prebuilt(name, doc, index)
    }

    /// Reads a `.xwqi` file into owned memory and places it. Returns its
    /// shard.
    pub fn add_index_file(&self, name: &str, path: impl AsRef<Path>) -> Result<usize, CorpusError> {
        let (doc, index) = xwq_store::read_index_file(path).map_err(StoreError::Format)?;
        self.add_prebuilt(name, doc, index)
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("shards", &self.shard_count())
            .field("policy", &self.policy)
            .field("docs", &self.len())
            .field("loads", &self.loads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_doc_counts() {
        let corpus = Corpus::new(3, PlacementPolicy::RoundRobin);
        for i in 0..7 {
            corpus
                .add_xml(&format!("d{i}"), "<r><x/></r>", TopologyKind::Array)
                .unwrap();
        }
        let loads = corpus.loads();
        let docs: Vec<usize> = loads.iter().map(|l| l.docs).collect();
        assert_eq!(docs.iter().sum::<usize>(), 7);
        assert!(docs.iter().all(|&d| d == 2 || d == 3), "{docs:?}");
    }

    #[test]
    fn size_balanced_prefers_the_lightest_shard() {
        let corpus = Corpus::new(2, PlacementPolicy::SizeBalanced);
        // One big document lands on shard 0 (empty tie → lowest index)…
        let big: String = format!("<r>{}</r>", "<x/>".repeat(200));
        assert_eq!(corpus.add_xml("big", &big, TopologyKind::Array).unwrap(), 0);
        // …then small documents all pile onto shard 1 until it catches up.
        for i in 0..5 {
            assert_eq!(
                corpus
                    .add_xml(&format!("s{i}"), "<r><x/></r>", TopologyKind::Array)
                    .unwrap(),
                1,
                "small doc {i} should avoid the heavy shard"
            );
        }
        let loads = corpus.loads();
        assert!(loads[0].nodes > loads[1].nodes);
        assert_eq!(loads[1].docs, 5);
    }

    #[test]
    fn duplicate_names_are_rejected_corpus_wide() {
        // Even when the duplicate would land on a *different* shard.
        let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
        corpus.add_xml("d", "<r/>", TopologyKind::Array).unwrap();
        assert!(matches!(
            corpus.add_xml("d", "<r/>", TopologyKind::Array),
            Err(CorpusError::DuplicateDocument(_))
        ));
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn doc_names_are_sorted_regardless_of_insertion_order() {
        let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
        for name in ["zeta", "alpha", "mid"] {
            corpus.add_xml(name, "<r/>", TopologyKind::Array).unwrap();
        }
        assert_eq!(corpus.doc_names(), vec!["alpha", "mid", "zeta"]);
        assert!(corpus.get("alpha").is_some());
        assert!(corpus.get("nope").is_none());
    }
}
