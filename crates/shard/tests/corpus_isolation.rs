//! Cross-document isolation under sharding: a corpus fan-out must be
//! byte-identical to querying each document through its own serial
//! [`Session`], at every worker count — and the per-document memo pools
//! must warm up per document without ever leaking across documents or
//! shards.

use proptest::prelude::*;
use std::sync::Arc;
use xwq_core::{EvalStats, Strategy};
use xwq_index::TopologyKind;
use xwq_shard::{Corpus, PlacementPolicy, ShardedSession};
use xwq_store::{DocumentStore, Session};
use xwq_xmark::GenOptions;

/// Worker counts the acceptance criteria pin: serial-equals-pooled must
/// hold at each of these.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Builds the same document set twice: once as a corpus, once as
/// independent single-document stores (the serial reference).
fn build_both(
    seeds: &[u64],
    factor: f64,
    shards: usize,
    policy: PlacementPolicy,
) -> (Arc<Corpus>, Vec<(String, Session)>) {
    let corpus = Corpus::new(shards, policy);
    let mut reference = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let name = format!("doc{i}");
        let doc = xwq_xmark::generate(GenOptions { factor, seed });
        let topology = if i % 2 == 0 {
            TopologyKind::Array
        } else {
            TopologyKind::Succinct
        };
        let index = xwq_index::TreeIndex::build_with(&doc, topology);
        let ref_store = DocumentStore::new();
        ref_store
            .insert_prebuilt(&name, doc.clone(), index.clone())
            .unwrap();
        reference.push((name.clone(), Session::new(Arc::new(ref_store))));
        corpus.add_prebuilt(&name, doc, index).unwrap();
    }
    (Arc::new(corpus), reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fan_out_is_byte_identical_to_per_doc_serial_sessions(
        seeds in prop::collection::vec(1u64..5000, 3..6),
        factor_milli in 2u32..8,
        shards in 1usize..4,
        policy in prop::sample::select(vec![
            PlacementPolicy::RoundRobin,
            PlacementPolicy::SizeBalanced,
        ]),
    ) {
        let factor = factor_milli as f64 / 1000.0;
        let (corpus, reference) = build_both(&seeds, factor, shards, policy);

        // Reuse detectability: every document's index has a distinct
        // process-unique identity, so pooled memos can never be confused
        // across documents.
        let mut identities: Vec<u64> = reference
            .iter()
            .map(|(name, _)| corpus.get(name).unwrap().engine().index().identity())
            .collect();
        identities.sort_unstable();
        identities.dedup();
        prop_assert_eq!(identities.len(), reference.len());

        for strategy in [Strategy::Optimized, Strategy::Auto] {
            for (qn, query) in xwq_xmark::queries() {
                // Serial reference: each document through its own session.
                let expected: Vec<(String, Result<Vec<u32>, ()>)> = reference
                    .iter()
                    .map(|(name, session)| {
                        let r = session
                            .query(name, query, strategy)
                            .map(|resp| resp.nodes)
                            .map_err(|_| ());
                        (name.clone(), r)
                    })
                    .collect();
                for workers in WORKER_COUNTS {
                    let session = ShardedSession::new(Arc::clone(&corpus), workers);
                    let (got, totals) = session.query_corpus_stats(query, strategy).unwrap();
                    prop_assert_eq!(got.len(), expected.len());
                    // Merge discipline: the fan-out total equals the sum
                    // of per-document stats — no worker's contribution is
                    // lost or double-counted, at any worker count.
                    let mut summed = EvalStats::default();
                    for o in &got {
                        if let Ok(resp) = &o.result {
                            summed.accumulate(&resp.stats);
                        }
                    }
                    prop_assert_eq!(
                        totals,
                        summed,
                        "Q{:02} [{}] totals drift at {} workers",
                        qn,
                        strategy.token(),
                        workers
                    );
                    for (exp, out) in expected.iter().zip(&got) {
                        prop_assert_eq!(&exp.0, &out.doc);
                        match (&exp.1, &out.result) {
                            (Ok(nodes), Ok(resp)) => prop_assert_eq!(
                                nodes,
                                &resp.nodes,
                                "Q{:02} [{}] diverges on {} at {} workers",
                                qn,
                                strategy.token(),
                                out.doc,
                                workers
                            ),
                            (Err(()), Err(_)) => {}
                            _ => return Err(TestCaseError::fail(format!(
                                "Q{qn:02} on {}: serial/sharded disagree on success",
                                out.doc
                            ))),
                        }
                    }
                }
            }
        }
    }
}

/// Three-document corpus for the deterministic memo-isolation checks.
fn memo_corpus() -> Arc<Corpus> {
    let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
    for (i, seed) in [11u64, 22, 33].iter().enumerate() {
        let doc = xwq_xmark::generate(GenOptions {
            factor: 0.01,
            seed: *seed,
        });
        corpus
            .add_prebuilt(
                &format!("doc{i}"),
                doc.clone(),
                xwq_index::TreeIndex::build(&doc),
            )
            .unwrap();
    }
    Arc::new(corpus)
}

#[test]
fn warm_per_shard_runs_report_zero_memo_misses() {
    let session = ShardedSession::new(memo_corpus(), 2);
    let query = "//item[name]";
    let cold = session.query_corpus(query, Strategy::Optimized).unwrap();
    assert_eq!(cold.len(), 3);
    for o in &cold {
        let resp = o.result.as_ref().unwrap();
        assert!(!resp.cache_hit, "{}: first fan-out must compile", o.doc);
        // Every document builds its *own* memo tables from scratch: if
        // pooled memos leaked across documents, a later document's cold
        // run would start warm (and, worse, could reuse node-keyed
        // answers belonging to a different tree).
        assert!(
            resp.stats.memo_misses > 0,
            "{}: cold run must populate its own memos, saw {:?}",
            o.doc,
            resp.stats
        );
        assert!(!resp.nodes.is_empty(), "{}: query should select", o.doc);
    }
    let warm = session.query_corpus(query, Strategy::Optimized).unwrap();
    for (c, w) in cold.iter().zip(&warm) {
        let resp = w.result.as_ref().unwrap();
        assert!(
            resp.cache_hit,
            "{}: second fan-out hits the shard cache",
            w.doc
        );
        assert_eq!(
            resp.stats.memo_misses, 0,
            "{}: warm run must reuse its pooled memo tables",
            w.doc
        );
        assert_eq!(
            c.result.as_ref().unwrap().nodes,
            resp.nodes,
            "{}: warm and cold runs must agree",
            w.doc
        );
    }
}

#[test]
fn fan_out_totals_equal_serial_totals() {
    // Hybrid compiles to a pure spine plan, so per-document stats carry no
    // memo warmth: a fresh session's totals must be identical between the
    // serial reference mode and every pooled worker count.
    let corpus = memo_corpus();
    let query = "//item[name]";
    let serial = ShardedSession::new(Arc::clone(&corpus), 0);
    let (_, expect) = serial.query_corpus_stats(query, Strategy::Hybrid).unwrap();
    assert!(expect.visited > 0, "reference totals must be non-trivial");
    for workers in WORKER_COUNTS {
        let session = ShardedSession::new(Arc::clone(&corpus), workers);
        let (_, totals) = session.query_corpus_stats(query, Strategy::Hybrid).unwrap();
        assert_eq!(totals, expect, "{workers} workers");
    }
}

#[test]
fn cross_document_reuse_never_occurs_across_worker_counts() {
    // The same corpus served by three sessions at different worker counts:
    // each session's cold fan-out must rebuild memos per document (three
    // cold compiles, three warmed pools), and results must be identical
    // across the three sessions.
    let corpus = memo_corpus();
    let query = "//item[mailbox]";
    let mut all_nodes: Vec<Vec<Vec<u32>>> = Vec::new();
    for workers in WORKER_COUNTS {
        let session = ShardedSession::new(Arc::clone(&corpus), workers);
        let cold = session.query_corpus(query, Strategy::Optimized).unwrap();
        for o in &cold {
            assert!(
                o.result.as_ref().unwrap().stats.memo_misses > 0,
                "{} at {workers} workers: cold run must miss",
                o.doc
            );
        }
        let warm = session.query_corpus(query, Strategy::Optimized).unwrap();
        for o in &warm {
            assert_eq!(
                o.result.as_ref().unwrap().stats.memo_misses,
                0,
                "{} at {workers} workers: warm run must not miss",
                o.doc
            );
        }
        all_nodes.push(
            warm.iter()
                .map(|o| o.result.as_ref().unwrap().nodes.clone())
                .collect(),
        );
    }
    assert_eq!(all_nodes[0], all_nodes[1]);
    assert_eq!(all_nodes[0], all_nodes[2]);
}
