//! Corpus-directory round-trip: documents persisted as per-doc `.xwqi`
//! artifacts plus a manifest must reopen via [`Corpus::open_dir`] (the
//! mmap path) and serve the same answers as the in-memory corpus,
//! under both placement policies and several shard counts.

use std::path::PathBuf;
use std::sync::Arc;
use xwq_core::Strategy;
use xwq_index::TreeIndex;
use xwq_shard::{Corpus, Manifest, PlacementPolicy, ShardedSession, MANIFEST_FILE};
use xwq_xmark::GenOptions;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xwq-shard-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Writes a 3-document corpus directory and returns (dir, in-memory corpus).
fn build_corpus_dir(tag: &str) -> (PathBuf, Arc<Corpus>) {
    let dir = tmp_dir(tag);
    let memory = Corpus::new(2, PlacementPolicy::RoundRobin);
    let mut manifest = Manifest::new();
    for (i, seed) in [7u64, 8, 9].iter().enumerate() {
        let name = format!("doc{i}");
        let file = format!("{name}.xwqi");
        let doc = xwq_xmark::generate(GenOptions {
            factor: 0.005,
            seed: *seed,
        });
        let index = TreeIndex::build(&doc);
        xwq_store::write_index_file(dir.join(&file), &doc, &index).expect("write .xwqi");
        manifest.push(&name, &file, doc.len()).unwrap();
        memory.add_prebuilt(&name, doc, index).unwrap();
    }
    manifest.write_dir(&dir).expect("write manifest");
    (dir, Arc::new(memory))
}

#[test]
fn open_dir_serves_identically_to_the_in_memory_corpus() {
    let (dir, memory) = build_corpus_dir("roundtrip");
    for shards in [1, 2, 3] {
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::SizeBalanced] {
            let mapped = Corpus::open_dir(&dir, shards, policy).expect("open_dir");
            assert_eq!(mapped.shard_count(), shards);
            assert_eq!(mapped.doc_names(), memory.doc_names());
            let mem_session = ShardedSession::new(Arc::clone(&memory), 0);
            let map_session = ShardedSession::new(Arc::new(mapped), 2);
            for query in ["//item", "//item[name]", "//person/name"] {
                let a = mem_session.query_corpus(query, Strategy::Auto).unwrap();
                let b = map_session.query_corpus(query, Strategy::Auto).unwrap();
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.doc, y.doc);
                    assert_eq!(
                        x.result.as_ref().unwrap().nodes,
                        y.result.as_ref().unwrap().nodes,
                        "{query} diverges on {} ({shards} shards, {policy:?})",
                        x.doc
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn placement_spreads_mapped_documents() {
    let (dir, _memory) = build_corpus_dir("placement");
    let corpus = Corpus::open_dir(&dir, 2, PlacementPolicy::SizeBalanced).unwrap();
    let loads = corpus.loads();
    assert_eq!(loads.iter().map(|l| l.docs).sum::<usize>(), 3);
    assert!(
        loads.iter().all(|l| l.docs >= 1),
        "size-balanced placement left a shard empty: {loads:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_dir_reports_broken_directories() {
    let dir = tmp_dir("broken");
    // No manifest at all.
    assert!(Corpus::open_dir(&dir, 2, PlacementPolicy::RoundRobin).is_err());
    // Manifest naming a missing artifact.
    std::fs::write(
        dir.join(MANIFEST_FILE),
        "xwq-corpus 1\ndoc\tghost\tghost.xwqi\t10\n",
    )
    .unwrap();
    assert!(Corpus::open_dir(&dir, 2, PlacementPolicy::RoundRobin).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
