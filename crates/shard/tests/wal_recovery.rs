//! Crash-recovery acceptance for the durable corpus: the power-cut
//! matrix.
//!
//! The central property (the acceptance criterion of the WAL work): for a
//! random sequence of durable mutations and **any byte-prefix cut of the
//! write-ahead log**, `Corpus::open_dir` recovers to a consistent catalog
//! — the state after some op boundary, never a mix — and every catalog
//! entry's artifact opens and answers queries. On top of that: the
//! fault-injection matrix (commits killed at each I/O point recover), the
//! WAL record corruption suite (bit flips, truncation, bad magic, bogus
//! length prefixes truncate at the first bad record and report replayed
//! vs dropped), and the epoch-GC guarantee that a pre-replace reader
//! keeps its generation byte-identically until dropped.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xwq_core::Strategy;
use xwq_shard::{wal, Corpus, CorpusError, FailPoint, PlacementPolicy, ShardedSession};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory; each test cleans up after itself.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xwq-walrec-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny document with exactly `k` `<x/>` children (so `//x` answers `k`
/// nodes and different versions are distinguishable by size).
fn build_doc(k: usize) -> (xwq_xml::Document, xwq_index::TreeIndex) {
    let xml = format!("<r>{}</r>", "<x/>".repeat(k));
    let doc = xwq_xml::parse(&xml).unwrap();
    let index = xwq_index::TreeIndex::build(&doc);
    (doc, index)
}

/// Copies the top-level regular files of a corpus directory (manifest,
/// WAL, artifacts — corpora are flat).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}

fn wal_len(dir: &Path) -> u64 {
    std::fs::metadata(dir.join("MANIFEST.wal"))
        .map(|m| m.len())
        .unwrap_or(0)
}

/// The model the power-cut proptest checks recovery against: doc name →
/// `<x/>` count of its current version.
type Model = BTreeMap<String, usize>;

fn verify_recovered(dir: &Path, expected: &Model) -> Result<(), TestCaseError> {
    let corpus = Corpus::open_dir(dir, 2, PlacementPolicy::RoundRobin)
        .map_err(|e| TestCaseError::fail(format!("recovery must succeed: {e}")))?;
    let names: Vec<String> = expected.keys().cloned().collect();
    prop_assert_eq!(
        corpus.doc_names(),
        names,
        "catalog must match an op boundary"
    );
    // Every artifact the recovered catalog references opens from disk…
    for (name, entry) in corpus.durable_entries() {
        let (doc, _) = xwq_store::read_index_file(dir.join(&entry.file))
            .map_err(|e| TestCaseError::fail(format!("artifact {} of {name}: {e}", entry.file)))?;
        prop_assert_eq!(
            doc.len() as u64,
            entry.nodes,
            "{}: catalog row and artifact disagree",
            name
        );
    }
    // …and answers queries with the version the model expects.
    let session = ShardedSession::new(Arc::new(corpus), 0);
    for outcome in session.query_corpus("//x", Strategy::Auto).unwrap() {
        let got = outcome.result.unwrap().nodes.len();
        prop_assert_eq!(
            got,
            expected[&outcome.doc],
            "{}: recovered to a mixed or stale version",
            &outcome.doc
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The power-cut matrix. Ops are applied live; the WAL length after
    /// each op marks that op's commit boundary. Then every byte prefix of
    /// the final WAL is materialized as a crash image and recovered: the
    /// catalog must equal the model at the last boundary inside the
    /// prefix, with all artifacts openable and answering.
    #[test]
    fn recovery_from_any_wal_byte_prefix_is_consistent(
        ops in prop::collection::vec((0u8..3, 0usize..4, 1usize..6), 1..8),
    ) {
        let live = scratch("prop-live");
        let cuts = scratch("prop-cuts");
        let corpus =
            Corpus::open_or_create_dir(&live, 1, PlacementPolicy::RoundRobin).unwrap();
        let names = ["a", "b", "c", "d"];

        let mut model: Model = BTreeMap::new();
        // `states[i]` = (WAL length, catalog) after i committed ops.
        let mut states: Vec<(u64, Model)> = vec![(0, model.clone())];
        for &(kind, which, k) in &ops {
            let name = names[which];
            let (doc, index) = build_doc(k);
            match (kind, model.contains_key(name)) {
                (0, false) | (1, false) => {
                    corpus.add_durable(name, doc, index).unwrap();
                    model.insert(name.to_string(), k);
                }
                (0, true) | (1, true) => {
                    corpus.replace(name, doc, index).unwrap();
                    model.insert(name.to_string(), k);
                }
                (2, true) => {
                    corpus.remove(name).unwrap();
                    model.remove(name);
                }
                (2, false) => continue, // nothing to remove; no record
                _ => unreachable!(),
            }
            states.push((wal_len(&live), model.clone()));
        }
        drop(corpus);

        let bytes = std::fs::read(live.join("MANIFEST.wal")).unwrap();
        for cut in 0..=bytes.len() {
            let dir = cuts.join(format!("cut{cut}"));
            copy_dir(&live, &dir);
            std::fs::write(dir.join("MANIFEST.wal"), &bytes[..cut]).unwrap();
            let expected = states
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut as u64)
                .map(|(_, m)| m)
                .expect("states[0] covers every cut");
            verify_recovered(&dir, expected)?;
            std::fs::remove_dir_all(&dir).unwrap();
        }

        std::fs::remove_dir_all(&live).unwrap();
        std::fs::remove_dir_all(&cuts).unwrap();
    }
}

#[test]
fn durable_ops_roundtrip_across_reopen_and_checkpoint() {
    let dir = scratch("roundtrip");
    {
        let corpus = Corpus::open_or_create_dir(&dir, 2, PlacementPolicy::RoundRobin).unwrap();
        let (doc, index) = build_doc(3);
        corpus.add_durable("alpha", doc, index).unwrap();
        let (doc, index) = build_doc(4);
        corpus.add_durable("beta", doc, index).unwrap();
        assert_eq!(corpus.wal_ops_since_checkpoint(), 2);
    }
    {
        // Reopen replays the log over the (still empty) manifest.
        let corpus = Corpus::open_dir(&dir, 2, PlacementPolicy::RoundRobin).unwrap();
        assert_eq!(corpus.doc_names(), vec!["alpha", "beta"]);
        assert_eq!(corpus.recovery_stats().replayed_ops, 2);
        assert!(!corpus.recovery_stats().torn, "clean shutdown, clean log");
        corpus.checkpoint().unwrap();
        assert_eq!(corpus.wal_ops_since_checkpoint(), 0);
    }
    {
        // After the checkpoint the manifest is the baseline: no replay.
        let corpus = Corpus::open_dir(&dir, 2, PlacementPolicy::RoundRobin).unwrap();
        assert_eq!(corpus.recovery_stats().replayed_ops, 0);
        assert_eq!(corpus.doc_names(), vec!["alpha", "beta"]);
        // Generations survive the checkpoint: a replace after reopen gets
        // a fresh stamp, not a recycled one.
        let (doc, index) = build_doc(5);
        corpus.replace("alpha", doc, index).unwrap();
        let entries: BTreeMap<_, _> = corpus.durable_entries().into_iter().collect();
        assert!(entries["alpha"].gen > entries["beta"].gen);
        corpus.remove("beta").unwrap();
    }
    let corpus = Corpus::open_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
    assert_eq!(corpus.doc_names(), vec!["alpha"]);
    let session = ShardedSession::new(Arc::new(corpus), 0);
    let out = session.query_corpus("//x", Strategy::Auto).unwrap();
    assert_eq!(out[0].result.as_ref().unwrap().nodes.len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_unknown_and_bad_names_are_rejected_durably() {
    let dir = scratch("names");
    let corpus = Corpus::open_or_create_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
    let (doc, index) = build_doc(1);
    corpus.add_durable("ok", doc, index).unwrap();
    for bad in ["", ".hidden", "a/b", "a\\b", "tab\tname"] {
        let (doc, index) = build_doc(1);
        assert!(
            matches!(
                corpus.add_durable(bad, doc, index),
                Err(CorpusError::BadName(_))
            ),
            "{bad:?} must be rejected"
        );
    }
    let (doc, index) = build_doc(1);
    assert!(matches!(
        corpus.add_durable("ok", doc, index),
        Err(CorpusError::DuplicateDocument(_))
    ));
    let (doc, index) = build_doc(1);
    assert!(matches!(
        corpus.replace("nope", doc, index),
        Err(CorpusError::UnknownDocument(_))
    ));
    assert!(matches!(
        corpus.remove("nope"),
        Err(CorpusError::UnknownDocument(_))
    ));
    // An in-memory corpus refuses durable mutations outright.
    let plain = Corpus::new(1, PlacementPolicy::RoundRobin);
    let (doc, index) = build_doc(1);
    assert!(matches!(
        plain.add_durable("x", doc, index),
        Err(CorpusError::NotDurable)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the `.xwqi` corruption suite's style applied to WAL
/// records — truncation, bit flips, bogus length prefixes — asserting
/// recovery truncates at the *first* bad record and reports replayed vs
/// dropped.
#[test]
fn wal_record_corruption_truncates_at_first_bad_record() {
    let dir = scratch("corrupt-base");
    {
        let corpus = Corpus::open_or_create_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
        let (doc, index) = build_doc(2);
        corpus.add_durable("a", doc, index).unwrap();
        let (doc, index) = build_doc(3);
        corpus.add_durable("b", doc, index).unwrap();
        let (doc, index) = build_doc(4);
        corpus.replace("a", doc, index).unwrap();
        corpus.remove("b").unwrap();
    }
    let bytes = std::fs::read(dir.join("MANIFEST.wal")).unwrap();
    let scan = wal::scan(&bytes).unwrap();
    assert_eq!(scan.records.len(), 4);
    assert!(scan.torn.is_none());
    // Record start offsets, from the per-record encodings.
    let mut starts = vec![wal::WAL_HEADER_LEN];
    for r in &scan.records {
        starts.push(starts.last().unwrap() + r.encode().len());
    }
    // The catalog after replaying records 0..j.
    let states: [&[&str]; 5] = [&[], &["a"], &["a", "b"], &["a", "b"], &["a"]];

    let check = |tag: &str, image: &[u8], first_bad: usize| {
        let case = scratch(tag);
        copy_dir(&dir, &case);
        std::fs::write(case.join("MANIFEST.wal"), image).unwrap();
        let corpus = Corpus::open_dir(&case, 1, PlacementPolicy::RoundRobin).unwrap();
        let stats = corpus.recovery_stats();
        assert_eq!(
            stats.replayed_ops, first_bad as u64,
            "{tag}: replay must stop at the first bad record"
        );
        assert!(stats.torn, "{tag}: the damage must register as a torn tail");
        assert_eq!(
            stats.dropped_bytes,
            (image.len() - starts[first_bad]) as u64,
            "{tag}: dropped bytes are everything from the first bad record on"
        );
        assert_eq!(corpus.doc_names(), states[first_bad], "{tag}");
        // The truncation is durable: a second open finds a clean log.
        drop(corpus);
        let again = Corpus::open_dir(&case, 1, PlacementPolicy::RoundRobin).unwrap();
        assert!(!again.recovery_stats().torn, "{tag}: truncation must stick");
        assert_eq!(again.doc_names(), states[first_bad], "{tag}");
        std::fs::remove_dir_all(&case).unwrap();
    };

    for j in 0..4 {
        // Mid-record truncation.
        check(
            &format!("trunc-{j}"),
            &bytes[..starts[j] + (starts[j + 1] - starts[j]) / 2],
            j,
        );
        // A single flipped payload bit fails the record checksum.
        let mut flipped = bytes.clone();
        flipped[starts[j + 1] - 1] ^= 0x40;
        check(&format!("flip-{j}"), &flipped, j);
        // A bogus length prefix must not be chased off the end.
        let mut bogus = bytes.clone();
        bogus[starts[j]..starts[j] + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        check(&format!("len-{j}"), &bogus, j);
    }

    // A file that is not a WAL at all is refused, not truncated.
    let case = scratch("badmagic");
    copy_dir(&dir, &case);
    let mut image = bytes.clone();
    image[..4].copy_from_slice(b"NOPE");
    std::fs::write(case.join("MANIFEST.wal"), &image).unwrap();
    assert!(matches!(
        Corpus::open_dir(&case, 1, PlacementPolicy::RoundRobin),
        Err(CorpusError::Wal(wal::WalError::BadMagic))
    ));
    std::fs::remove_dir_all(&case).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fault-injection matrix: a durable `add` killed at each I/O point
/// of the commit path must leave a state `open_dir` recovers from, with
/// the catalog on the old or the new side (never mixed) and the corpus
/// writable again after recovery.
#[test]
fn fault_injection_matrix_recovers_at_every_point() {
    let base = scratch("fault-base");
    {
        let corpus = Corpus::open_or_create_dir(&base, 1, PlacementPolicy::RoundRobin).unwrap();
        let (doc, index) = build_doc(2);
        corpus.add_durable("seed", doc, index).unwrap();
        corpus.checkpoint().unwrap();
    }
    let points = [
        FailPoint::StageSync,
        FailPoint::WalSync,
        FailPoint::DirSync,
        // Byte cuts inside the record being appended: before anything,
        // inside the record header, on its boundary, and mid-payload.
        FailPoint::WalWriteAt(0),
        FailPoint::WalWriteAt(1),
        FailPoint::WalWriteAt(4),
        FailPoint::WalWriteAt(12),
        FailPoint::WalWriteAt(13),
        FailPoint::WalWriteAt(30),
    ];
    for point in points {
        let dir = scratch("fault-case");
        copy_dir(&base, &dir);
        {
            let corpus = Corpus::open_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
            corpus.inject_fault(point).unwrap();
            let (doc, index) = build_doc(5);
            assert!(
                corpus.add_durable("new", doc, index).is_err(),
                "{point:?}: the injected fault must surface"
            );
            // Commit-path faults poison the writer until reopen.
            if !matches!(point, FailPoint::StageSync) {
                let (doc, index) = build_doc(1);
                assert!(
                    matches!(
                        corpus.add_durable("other", doc, index),
                        Err(CorpusError::Broken)
                    ),
                    "{point:?}: writer must be poisoned after a failed commit"
                );
            }
        }
        let corpus = Corpus::open_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
        let names = corpus.doc_names();
        assert!(
            names == vec!["seed"] || names == vec!["new", "seed"],
            "{point:?}: recovered to a mixed catalog: {names:?}"
        );
        for (name, entry) in corpus.durable_entries() {
            let (doc, _) = xwq_store::read_index_file(dir.join(&entry.file))
                .unwrap_or_else(|e| panic!("{point:?}: artifact of {name}: {e}"));
            assert_eq!(doc.len() as u64, entry.nodes, "{point:?}: {name}");
        }
        // No staged leftovers survive recovery.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let fname = entry.unwrap().file_name();
            assert!(
                !fname.to_string_lossy().starts_with(".stage."),
                "{point:?}: staged leftover {fname:?}"
            );
        }
        // The corpus accepts durable writes again.
        let (doc, index) = build_doc(3);
        corpus.add_durable("post", doc, index).unwrap();
        assert!(corpus.doc_names().contains(&"post".to_string()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// Acceptance: a reader holding a pre-replace epoch guard keeps the old
/// generation byte-identical until dropped — even across the checkpoint
/// that seals the replace — and the file is reclaimed right when the
/// guard goes.
#[test]
fn pre_replace_guard_serves_the_old_generation_byte_identically() {
    let dir = scratch("epoch");
    let corpus =
        Arc::new(Corpus::open_or_create_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap());
    let (doc, index) = build_doc(3);
    corpus.add_durable("doc", doc, index).unwrap();
    let old_entry = &corpus.durable_entries()[0].1;
    let old_path = dir.join(&old_entry.file);
    let old_bytes = std::fs::read(&old_path).unwrap();
    let old_len = corpus.get("doc").unwrap().document().len();

    // An in-flight reader: epoch pinned before the replace, document
    // handle in hand.
    let guard = corpus.pin();
    let held = corpus.get("doc").unwrap();

    let (doc, index) = build_doc(7);
    corpus.replace("doc", doc, index).unwrap();
    corpus.checkpoint().unwrap(); // seals the replace for GC

    // New lookups see the new generation; the pinned reader's view is
    // untouched and its artifact is still on disk, byte for byte.
    assert_eq!(corpus.get("doc").unwrap().document().len(), 8);
    assert_eq!(held.document().len(), old_len);
    assert!(old_path.exists(), "pinned epoch must keep the artifact");
    assert_eq!(std::fs::read(&old_path).unwrap(), old_bytes);
    assert_eq!(corpus.gc().pending(), 1);

    drop(held);
    drop(guard);
    assert!(!old_path.exists(), "drained + sealed artifact is reclaimed");
    assert_eq!(corpus.gc().unlinked_total(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the manifest write path is atomic — no staging residue, and
/// a rewrite is all-or-nothing (exercised here as: the staged temp name
/// never survives a successful write).
#[test]
fn manifest_rewrites_leave_no_staging_residue() {
    let dir = scratch("manifest");
    let corpus = Corpus::open_or_create_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
    for (i, name) in ["a", "b", "c"].iter().enumerate() {
        let (doc, index) = build_doc(i + 1);
        corpus.add_durable(name, doc, index).unwrap();
        corpus.checkpoint().unwrap(); // rewrites MANIFEST.xwqc each time
    }
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(".stage."))
        .collect();
    assert!(leftovers.is_empty(), "staging residue: {leftovers:?}");
    // And the rewritten manifest round-trips.
    let reopened = Corpus::open_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
    assert_eq!(reopened.doc_names(), vec!["a", "b", "c"]);
    assert_eq!(reopened.recovery_stats().replayed_ops, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recovery telemetry: a torn open exports its counters through the
/// registry once wired.
#[test]
fn recovery_counters_export_through_the_registry() {
    let dir = scratch("recovery-obs");
    {
        let corpus = Corpus::open_or_create_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap();
        let (doc, index) = build_doc(2);
        corpus.add_durable("a", doc, index).unwrap();
        let (doc, index) = build_doc(3);
        corpus.add_durable("b", doc, index).unwrap();
    }
    // Tear the log mid-way through the second record.
    let path = dir.join("MANIFEST.wal");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let corpus = Arc::new(Corpus::open_dir(&dir, 1, PlacementPolicy::RoundRobin).unwrap());
    let stats = corpus.recovery_stats();
    assert!(stats.torn);
    // The 3-byte cut tears the whole final record off the log.
    assert!(stats.dropped_bytes >= 3, "{stats:?}");
    let session = ShardedSession::new(Arc::clone(&corpus), 1);
    let registry = xwq_obs::Registry::new();
    session.enable_telemetry(&registry);
    let text = registry.render(xwq_obs::RenderFormat::Prometheus);
    assert!(
        text.contains("xwq_wal_replayed_ops_total 1"),
        "replay counter:\n{text}"
    );
    assert!(
        text.contains("xwq_wal_torn_truncations_total 1"),
        "torn counter:\n{text}"
    );
    assert!(
        text.contains(&format!(
            "xwq_wal_dropped_bytes_total {}",
            stats.dropped_bytes
        )),
        "dropped-bytes counter:\n{text}"
    );
    // A durable commit after wiring lands in the latency histogram.
    let (doc, index) = build_doc(4);
    corpus.add_durable("c", doc, index).unwrap();
    let text = registry.render(xwq_obs::RenderFormat::Prometheus);
    assert!(
        text.contains("xwq_wal_commit_latency_ns_count 1"),
        "commit latency histogram:\n{text}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
