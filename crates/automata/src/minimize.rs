//! Minimization of deterministic selecting tree automata (App. A.2).
//!
//! Theorem A.1: every complete TDSTA (resp. BDSTA) has a unique equivalent
//! minimal one. The appendix computes it by encoding into a recognizer over
//! `Σ ∪ Σ̂` and running standard minimization with a selection-aware initial
//! partition; refining directly over `Σ` with the selection status folded
//! into each state's per-label signature is the same computation without the
//! detour — which is what we do here.

use crate::bottomup::BuTable;
use crate::sta::{Sta, StateId};
use xwq_index::FxHashMap;
use xwq_xml::{LabelId, LabelSet};

/// Minimizes a complete top-down deterministic STA.
///
/// Steps: trim states unreachable from the top state, Moore-refine with
/// signatures `(B-membership; per label: child blocks and selection)`,
/// quotient.
///
/// # Panics
/// Panics if `a` is not a complete TDSTA.
pub fn minimize_tdsta(a: &Sta) -> Sta {
    let table = a.td_table().expect("complete TDSTA required");
    let sigma = a.alphabet_size;

    // Empty-language states absorb their siblings (a subtree sent to an
    // empty state rejects the whole tree no matter what the other child
    // does), so plain refinement would keep apart states that only differ
    // below an empty branch. Collapse every empty state to one sink first:
    // q is non-empty iff q ∈ B (accepts #) or some transition leads to two
    // non-empty states.
    let mut nonempty: Vec<bool> = a.bottom.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for q in a.states() {
            if nonempty[q as usize] {
                continue;
            }
            for l in 0..sigma as LabelId {
                let (q1, q2) = table.step(q, l);
                if nonempty[q1 as usize] && nonempty[q2 as usize] {
                    nonempty[q as usize] = true;
                    changed = true;
                    break;
                }
            }
        }
    }
    let sink = a.states().find(|&q| !nonempty[q as usize]);
    // A transition with *either* child empty accepts nothing at all, so the
    // whole pair normalizes to (sink, sink) — not just the empty side.
    let step = |q: StateId, l: LabelId| -> (StateId, StateId) {
        let (q1, q2) = table.step(q, l);
        if nonempty[q1 as usize] && nonempty[q2 as usize] {
            (q1, q2)
        } else {
            (sink.unwrap(), sink.unwrap())
        }
    };

    // Reachability from the initial state (through the collapsed table).
    let mut reach = vec![false; a.n_states as usize];
    let mut work = vec![table.init];
    reach[table.init as usize] = true;
    while let Some(q) = work.pop() {
        for l in 0..sigma as LabelId {
            let (q1, q2) = step(q, l);
            for nq in [q1, q2] {
                if !reach[nq as usize] {
                    reach[nq as usize] = true;
                    work.push(nq);
                }
            }
        }
    }
    let alive: Vec<StateId> = a.states().filter(|&q| reach[q as usize]).collect();

    // Moore refinement. block[q] is meaningful only for reachable q.
    let mut block: Vec<u32> = a
        .states()
        .map(|q| u32::from(a.bottom[q as usize]))
        .collect();
    loop {
        let mut sig_ids: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut next: Vec<u32> = block.clone();
        let mut changed = false;
        for &q in &alive {
            let mut sig: Vec<u32> = Vec::with_capacity(1 + 3 * sigma);
            sig.push(block[q as usize]);
            for l in 0..sigma as LabelId {
                let (q1, q2) = step(q, l);
                sig.push(block[q1 as usize]);
                sig.push(block[q2 as usize]);
                // A selection mark at (q, l) is observable only when some
                // tree rooted at l is actually accepted from q.
                let observable = nonempty[q1 as usize] && nonempty[q2 as usize];
                sig.push(u32::from(observable && a.selects(q, l)));
            }
            let fresh = sig_ids.len() as u32;
            let id = *sig_ids.entry(sig).or_insert(fresh);
            if id != block[q as usize] {
                changed = true;
            }
            next[q as usize] = id;
        }
        block = next;
        if !changed {
            break;
        }
    }

    quotient_td(a, &step, &nonempty, table.init, &alive, &block)
}

fn quotient_td(
    a: &Sta,
    step: &dyn Fn(StateId, LabelId) -> (StateId, StateId),
    nonempty: &[bool],
    init: StateId,
    alive: &[StateId],
    block: &[u32],
) -> Sta {
    let sigma = a.alphabet_size;
    // Dense block ids and one representative per block.
    let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
    let mut reps: Vec<StateId> = Vec::new();
    for &q in alive {
        let fresh = dense.len() as u32;
        dense.entry(block[q as usize]).or_insert_with(|| {
            reps.push(q);
            fresh
        });
    }
    let n = reps.len() as u32;
    let mut out = Sta::new(n, sigma);
    let b_of = |q: StateId| dense[&block[q as usize]];
    out.top[b_of(init) as usize] = true;
    for (i, &rep) in reps.iter().enumerate() {
        out.bottom[i] = a.bottom[rep as usize];
        if nonempty[rep as usize] {
            out.select[i] = a.select[rep as usize].clone();
        }
    }
    // Group labels by destination pair for compact transitions.
    for (i, &rep) in reps.iter().enumerate() {
        let mut by_dest: FxHashMap<(StateId, StateId), LabelSet> = FxHashMap::default();
        for l in 0..sigma as LabelId {
            let (q1, q2) = step(rep, l);
            by_dest
                .entry((b_of(q1), b_of(q2)))
                .or_insert_with(|| LabelSet::empty(sigma))
                .insert(l);
        }
        let mut dests: Vec<_> = by_dest.into_iter().collect();
        dests.sort_by_key(|&((d1, d2), _)| (d1, d2));
        for ((d1, d2), labels) in dests {
            out.add(i as u32, labels, d1, d2);
        }
    }
    out
}

/// Minimizes a complete bottom-up deterministic STA.
///
/// Same structure as [`minimize_tdsta`], with bottom-up reachability
/// (derivability from the leaf state) and context signatures
/// `δ(q, r, l), δ(r, q, l)` over all reachable partners `r`.
///
/// # Panics
/// Panics if `a` is not a complete BDSTA.
pub fn minimize_bdsta(a: &Sta) -> Sta {
    let table = BuTable::new(a).expect("complete BDSTA required");
    let sigma = a.alphabet_size;

    // Derivable states (reachable bottom-up from q0).
    let mut reach = vec![false; a.n_states as usize];
    reach[table.init as usize] = true;
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot: Vec<StateId> = a.states().filter(|&q| reach[q as usize]).collect();
        for &q1 in &snapshot {
            for &q2 in &snapshot {
                for l in 0..sigma as LabelId {
                    let q = table.step(q1, q2, l);
                    if !reach[q as usize] {
                        reach[q as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    let alive: Vec<StateId> = a.states().filter(|&q| reach[q as usize]).collect();

    // Dual of the empty-state collapse: a state from which no context can
    // reach acceptance ("dead") is equivalent to every other dead state,
    // and any transition *producing* a dead state may as well produce the
    // canonical one. useful(q): q ∈ T, or q can appear as a child of a
    // useful result together with some derivable partner.
    let mut useful: Vec<bool> = a.top.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for &q in &alive {
            if useful[q as usize] {
                continue;
            }
            'search: for &r in &alive {
                for l in 0..sigma as LabelId {
                    if useful[table.step(q, r, l) as usize] || useful[table.step(r, q, l) as usize]
                    {
                        useful[q as usize] = true;
                        changed = true;
                        break 'search;
                    }
                }
            }
        }
    }
    let dead = alive.iter().copied().find(|&q| !useful[q as usize]);
    let step = |q1: StateId, q2: StateId, l: LabelId| -> StateId {
        let q = table.step(q1, q2, l);
        if useful[q as usize] {
            q
        } else {
            dead.unwrap_or(q)
        }
    };

    // Moore refinement with initial partition by T-membership.
    let mut block: Vec<u32> = a.states().map(|q| u32::from(a.top[q as usize])).collect();
    loop {
        let mut sig_ids: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut next = block.clone();
        let mut any_change = false;
        for &q in &alive {
            let mut sig: Vec<u32> = Vec::with_capacity(2 + alive.len() * sigma * 2);
            sig.push(block[q as usize]);
            for l in 0..sigma as LabelId {
                // Selection is observable only at useful states.
                sig.push(u32::from(useful[q as usize] && a.selects(q, l)));
            }
            for &r in &alive {
                for l in 0..sigma as LabelId {
                    sig.push(block[step(q, r, l) as usize]);
                    sig.push(block[step(r, q, l) as usize]);
                }
            }
            let fresh = sig_ids.len() as u32;
            let id = *sig_ids.entry(sig).or_insert(fresh);
            if id != block[q as usize] {
                any_change = true;
            }
            next[q as usize] = id;
        }
        block = next;
        if !any_change {
            break;
        }
    }

    // Quotient.
    let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
    let mut reps: Vec<StateId> = Vec::new();
    for &q in &alive {
        let fresh = dense.len() as u32;
        dense.entry(block[q as usize]).or_insert_with(|| {
            reps.push(q);
            fresh
        });
    }
    let n = reps.len() as u32;
    let mut out = Sta::new(n, sigma);
    let b_of = |q: StateId| dense[&block[q as usize]];
    out.bottom[b_of(table.init) as usize] = true;
    for (i, &rep) in reps.iter().enumerate() {
        out.top[i] = a.top[rep as usize];
        if useful[rep as usize] {
            out.select[i] = a.select[rep as usize].clone();
        }
    }
    for (i, &rep1) in reps.iter().enumerate() {
        for (j, &rep2) in reps.iter().enumerate() {
            let mut by_src: FxHashMap<StateId, LabelSet> = FxHashMap::default();
            for l in 0..sigma as LabelId {
                let q = step(rep1, rep2, l);
                by_src
                    .entry(b_of(q))
                    .or_insert_with(|| LabelSet::empty(sigma))
                    .insert(l);
            }
            let mut srcs: Vec<_> = by_src.into_iter().collect();
            srcs.sort_by_key(|&(q, _)| q);
            for (q, labels) in srcs {
                out.add(q, labels, i as u32, j as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::sta_equiv;
    use crate::examples;
    use xwq_xml::LabelSet;

    #[test]
    fn paper_examples_are_already_minimal() {
        let (a, _) = examples::a_descendant_b();
        let m = minimize_tdsta(&a);
        assert_eq!(m.n_states, 2);
        assert!(sta_equiv(&a, &m));

        let (b, _) = examples::a_with_b_descendant();
        let m = minimize_bdsta(&b);
        assert_eq!(m.n_states, 3, "q0, q1, q2 are pairwise inequivalent");
        assert!(sta_equiv(&b, &m));
    }

    #[test]
    fn redundant_copy_state_is_merged() {
        // Three-state variant of A_{//a//b} with q2 ≡ q1.
        let (orig, al) = examples::a_descendant_b();
        let n = al.len();
        let mut a = Sta::new(3, n);
        a.top[0] = true;
        a.bottom = vec![true, true, true];
        let la = LabelSet::singleton(n, al.lookup("a").unwrap());
        let lb = LabelSet::singleton(n, al.lookup("b").unwrap());
        a.add(0, la.clone(), 2, 0);
        a.add(0, la.complement(), 0, 0);
        for q in [1u32, 2] {
            a.add_selecting(q, lb.clone(), 1, 2);
            a.add(q, lb.complement(), 2, 1);
        }
        assert!(a.is_tdsta() && a.is_topdown_complete());
        let m = minimize_tdsta(&a);
        assert_eq!(m.n_states, 2);
        assert!(sta_equiv(&m, &orig));
        assert!(sta_equiv(&m, &a));
    }

    #[test]
    fn unreachable_states_are_trimmed() {
        let (orig, _) = examples::a_descendant_b();
        let mut a = orig.clone();
        // Add an unreachable state with arbitrary complete behaviour.
        let q = a.n_states;
        a.n_states += 1;
        a.top.push(false);
        a.bottom.push(true);
        a.select.push(LabelSet::empty(a.alphabet_size));
        a.add(q, LabelSet::empty(a.alphabet_size).complement(), q, q);
        let m = minimize_tdsta(&a);
        assert_eq!(m.n_states, 2);
        assert!(sta_equiv(&m, &orig));
    }

    #[test]
    fn minimization_is_idempotent() {
        let (a, _) = examples::a_descendant_b();
        let m1 = minimize_tdsta(&a);
        let m2 = minimize_tdsta(&m1);
        assert_eq!(m1.n_states, m2.n_states);
        assert!(sta_equiv(&m1, &m2));

        let (b, _) = examples::a_with_b_descendant();
        let m1 = minimize_bdsta(&b);
        let m2 = minimize_bdsta(&m1);
        assert_eq!(m1.n_states, m2.n_states);
        assert!(sta_equiv(&m1, &m2));
    }

    #[test]
    fn selection_prevents_merging() {
        // Two states with identical language but different selection must
        // not merge (the 4-way E0 of App. A.2).
        let (a, al) = examples::a_descendant_b();
        let m = minimize_tdsta(&a);
        // q0 and q1 accept the same language (everything) but differ in
        // selection — both survive.
        assert_eq!(m.n_states, 2);
        let lb = al.lookup("b").unwrap();
        let selecting: Vec<_> = m.states().filter(|&q| m.selects(q, lb)).collect();
        assert_eq!(selecting.len(), 1);
    }

    #[test]
    fn minimal_dtd_recognizer_keeps_three_states() {
        let (dtd, _) = examples::dtd_root_a();
        let mut complete = dtd.clone();
        complete.complete_topdown();
        let m = minimize_tdsta(&complete);
        assert_eq!(m.n_states, 3, "q0, q⊤, q⊥ are pairwise distinct");
        assert!(sta_equiv(&m, &dtd));
    }
}
