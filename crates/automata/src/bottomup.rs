//! Deterministic bottom-up evaluation (§3.2, Algorithm B.2) and bottom-up
//! relevance (Lemma 3.2).

use crate::sta::{Sta, StateId};
use xwq_index::{FxHashMap, LabelId, NodeId, TreeIndex, NONE};

/// Compiled bottom-up transition function of a complete BDSTA.
#[derive(Clone, Debug)]
pub struct BuTable {
    map: FxHashMap<(StateId, StateId, LabelId), StateId>,
    /// The unique bottom state `q₀`.
    pub init: StateId,
}

impl BuTable {
    /// Builds the table; `None` unless `a` is bottom-up deterministic and
    /// complete.
    pub fn new(a: &Sta) -> Option<Self> {
        let init = match &a.bottom_states()[..] {
            [q] => *q,
            _ => return None,
        };
        let mut map = FxHashMap::default();
        for t in &a.delta {
            for l in t.labels.iter() {
                match map.insert((t.q1, t.q2, l), t.q) {
                    Some(prev) if prev != t.q => return None, // nondeterministic
                    _ => {}
                }
            }
        }
        let n = a.n_states;
        let complete = (0..n).all(|q1| {
            (0..n).all(|q2| (0..a.alphabet_size as u32).all(|l| map.contains_key(&(q1, q2, l))))
        });
        if !complete {
            return None;
        }
        Some(Self { map, init })
    }

    /// `δ(q₁, q₂, l)` as the unique source state.
    #[inline]
    pub fn step(&self, q1: StateId, q2: StateId, l: LabelId) -> StateId {
        self.map[&(q1, q2, l)]
    }
}

/// The unique run of a complete BDSTA over a tree.
#[derive(Clone, Debug)]
pub struct BuRun {
    /// `states[v]` = state assigned to real node `v` (all `#` leaves carry
    /// the unique bottom state).
    pub states: Vec<StateId>,
    /// True iff the root state is in `T`.
    pub accepting: bool,
}

/// Computes the unique bottom-up run. `None` unless `a` is bottom-up
/// deterministic and complete.
///
/// Both binary children of a node have larger preorder ids, so a single
/// reverse-preorder pass computes the run without recursion.
pub fn run_bottomup(a: &Sta, ix: &TreeIndex) -> Option<BuRun> {
    let table = BuTable::new(a)?;
    let n = ix.len();
    let mut states = vec![0u32; n];
    for v in (0..n as NodeId).rev() {
        let fc = ix.first_child(v);
        let ns = ix.next_sibling(v);
        let s1 = if fc == NONE {
            table.init
        } else {
            states[fc as usize]
        };
        let s2 = if ns == NONE {
            table.init
        } else {
            states[ns as usize]
        };
        states[v as usize] = table.step(s1, s2, ix.label(v));
    }
    let accepting = a.top[states[0] as usize];
    Some(BuRun { states, accepting })
}

/// The selected nodes of an accepting bottom-up run (empty if rejecting).
pub fn selected_of_run(a: &Sta, run: &BuRun, ix: &TreeIndex) -> Vec<NodeId> {
    if !run.accepting {
        return Vec::new();
    }
    (0..ix.len() as NodeId)
        .filter(|&v| a.selects(run.states[v as usize], ix.label(v)))
        .collect()
}

/// Bottom-up relevance per Lemma 3.2.
///
/// `a` must be the minimal bottom-up complete BDSTA; `q⊤` is its bottom-up
/// universal state (non-changing, in `T`), if any.
pub fn bottomup_relevant(a: &Sta, run: &BuRun, ix: &TreeIndex) -> Vec<bool> {
    let table = BuTable::new(a).expect("complete BDSTA required");
    let q0 = table.init;
    let q_top = a
        .states()
        .find(|&q| a.is_non_changing(q) && a.top[q as usize]);
    let skippable = |s: StateId| s == q0 || Some(s) == q_top;
    (0..ix.len() as NodeId)
        .map(|v| {
            let q = run.states[v as usize];
            let l = ix.label(v);
            if a.selects(q, l) {
                return true;
            }
            if Some(q) == q_top {
                return false;
            }
            let s1 = child_state(run, ix.first_child(v), q0);
            let s2 = child_state(run, ix.next_sibling(v), q0);
            let loop_both = q == s1 && q == s2;
            let loop_left = q == s1 && skippable(s2);
            let loop_right = q == s2 && skippable(s1);
            !(loop_both || loop_left || loop_right)
        })
        .collect()
}

#[inline]
fn child_state(run: &BuRun, child: NodeId, q0: StateId) -> StateId {
    if child == NONE {
        q0
    } else {
        run.states[child as usize]
    }
}

/// Algorithm B.2, faithfully: reduce the preorder sequence of `#`-leaves.
///
/// A binary-tree position is either a real node or a missing child of one;
/// the shift-reduce loop below is the iterative form of the paper's
/// recursive list reduction (the recursion on the tail is exactly "shift").
/// Exposed to validate [`run_bottomup`] against the paper's own formulation.
pub fn bottomup_shift_reduce(a: &Sta, ix: &TreeIndex) -> Option<BuRun> {
    let table = BuTable::new(a)?;
    // Binary position: real node v, or the missing side of one.
    #[derive(Clone, Copy, PartialEq)]
    enum Pos {
        Real(NodeId),
        HashLeft(NodeId),
        HashRight(NodeId),
    }
    // Binary parent and side of a position.
    let bin_parent = |p: Pos, ix: &TreeIndex| -> Option<(NodeId, bool)> {
        match p {
            Pos::HashLeft(v) => Some((v, true)),
            Pos::HashRight(v) => Some((v, false)),
            Pos::Real(v) => {
                // v is the left child of its binary parent iff it is a first
                // child; otherwise it is the right child of its previous
                // sibling. The previous sibling is not stored, so walk.
                if v == ix.root() {
                    return None;
                }
                let parent = ix.parent(v);
                if ix.first_child(parent) == v {
                    return Some((parent, true));
                }
                let mut s = ix.first_child(parent);
                while ix.next_sibling(s) != v {
                    s = ix.next_sibling(s);
                }
                Some((s, false))
            }
        }
    };
    // Enumerate the `#` leaves in preorder of the binary tree.
    let mut leaves: Vec<Pos> = Vec::new();
    {
        // Iterative preorder over binary positions.
        let mut stack = vec![Pos::Real(ix.root())];
        while let Some(p) = stack.pop() {
            match p {
                Pos::Real(v) => {
                    let fc = ix.first_child(v);
                    let ns = ix.next_sibling(v);
                    // Right pushed first so left is processed first.
                    stack.push(if ns == NONE {
                        Pos::HashRight(v)
                    } else {
                        Pos::Real(ns)
                    });
                    stack.push(if fc == NONE {
                        Pos::HashLeft(v)
                    } else {
                        Pos::Real(fc)
                    });
                }
                leaf => leaves.push(leaf),
            }
        }
    }
    // Shift-reduce: two adjacent items that are the two children of the same
    // real node reduce to their parent.
    let mut states = vec![u32::MAX; ix.len()];
    // (position, state, binary parent and side).
    type Slot = (Pos, StateId, Option<(NodeId, bool)>);
    let mut stack: Vec<Slot> = Vec::new();
    for leaf in leaves {
        let meta = bin_parent(leaf, ix);
        stack.push((leaf, table.init, meta));
        // Reduce as long as the top two items are siblings.
        while stack.len() >= 2 {
            let (_, q2, m2) = stack[stack.len() - 1];
            let (_, q1, m1) = stack[stack.len() - 2];
            match (m1, m2) {
                (Some((p1, true)), Some((p2, false))) if p1 == p2 => {
                    stack.pop();
                    stack.pop();
                    let q = table.step(q1, q2, ix.label(p1));
                    states[p1 as usize] = q;
                    let meta = bin_parent(Pos::Real(p1), ix);
                    stack.push((Pos::Real(p1), q, meta));
                }
                _ => break,
            }
        }
    }
    debug_assert_eq!(stack.len(), 1, "reduction must end at the root");
    let accepting = a.top[states[0] as usize];
    Some(BuRun { states, accepting })
}
