//! Deterministic top-down evaluation: full runs, relevance (Lemma 3.1), and
//! the jumping run `topdown_jump` (Algorithm B.1 / Theorem 3.1).

use crate::sta::{Sta, StateId};
use xwq_index::{FxHashMap, LabelSet, NodeId, TreeIndex, NONE};

/// The unique run of a complete TDSTA over a tree.
#[derive(Clone, Debug)]
pub struct TdRun {
    /// `states[v]` = state assigned to real node `v`.
    pub states: Vec<StateId>,
    /// True iff the run is accepting (root in `T` by construction; every `#`
    /// leaf state in `B`).
    pub accepting: bool,
}

/// Computes the unique run of a complete TDSTA. Returns `None` if the
/// automaton is not top-down deterministic and complete.
///
/// Recursion is on first-child edges only (depth = XML depth); sibling
/// chains are iterated, so arbitrarily wide documents are safe.
pub fn run_topdown(a: &Sta, ix: &TreeIndex) -> Option<TdRun> {
    let table = a.td_table()?;
    let mut states = vec![0u32; ix.len()];
    let mut accepting = true;

    fn rec(
        a: &Sta,
        table: &crate::sta::TdTable,
        ix: &TreeIndex,
        states: &mut [StateId],
        accepting: &mut bool,
        mut v: NodeId,
        mut q: StateId,
    ) {
        loop {
            states[v as usize] = q;
            let (q1, q2) = table.step(q, ix.label(v));
            let fc = ix.first_child(v);
            if fc == NONE {
                if !a.bottom[q1 as usize] {
                    *accepting = false;
                }
            } else {
                rec(a, table, ix, states, accepting, fc, q1);
            }
            let ns = ix.next_sibling(v);
            if ns == NONE {
                if !a.bottom[q2 as usize] {
                    *accepting = false;
                }
                return;
            }
            v = ns;
            q = q2;
        }
    }

    rec(
        a,
        &table,
        ix,
        &mut states,
        &mut accepting,
        ix.root(),
        table.init,
    );
    Some(TdRun { states, accepting })
}

/// The selected nodes `A(t)` of an accepting run (Def. 2.3); empty if the
/// run is rejecting.
pub fn selected_of_run(a: &Sta, run: &TdRun, ix: &TreeIndex) -> Vec<NodeId> {
    if !run.accepting {
        return Vec::new();
    }
    (0..ix.len() as NodeId)
        .filter(|&v| a.selects(run.states[v as usize], ix.label(v)))
        .collect()
}

/// Top-down relevance of every real node per Lemma 3.1.
///
/// `a` must be the *minimal* complete TDSTA for its query: relevance is only
/// canonical for minimal automata (§3). States of `#` children are taken
/// from the transition itself.
pub fn topdown_relevant(a: &Sta, run: &TdRun, ix: &TreeIndex) -> Vec<bool> {
    let table = a.td_table().expect("complete TDSTA required");
    let q_top = a.states().find(|&q| a.is_td_universal(q));
    (0..ix.len() as NodeId)
        .map(|v| {
            let q = run.states[v as usize];
            let l = ix.label(v);
            if a.selects(q, l) {
                return true;
            }
            let (q1, q2) = table.step(q, l);
            let s1 = child_state(run, ix.first_child(v), q1);
            let s2 = child_state(run, ix.next_sibling(v), q2);
            let loop_both = q == s1 && q == s2;
            let loop_left = q == s1 && Some(s2) == q_top;
            let loop_right = q == s2 && Some(s1) == q_top;
            !(loop_both || loop_left || loop_right)
        })
        .collect()
}

#[inline]
fn child_state(run: &TdRun, child: NodeId, from_delta: StateId) -> StateId {
    if child == NONE {
        from_delta
    } else {
        run.states[child as usize]
    }
}

/// Statistics of a jumping run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JumpStats {
    /// Real nodes whose transition was evaluated.
    pub visited: usize,
    /// Index jump operations performed (`dt`/`ft`/`lt`/`rt`).
    pub jumps: usize,
}

/// Result of [`topdown_jump`].
#[derive(Clone, Debug)]
pub struct JumpRun {
    /// Partial mapping node → state, defined exactly on the visited nodes.
    /// Empty if the full run is rejecting.
    pub states: FxHashMap<NodeId, StateId>,
    /// True iff the underlying full run is accepting.
    pub accepting: bool,
    /// Traversal statistics.
    pub stats: JumpStats,
}

impl JumpRun {
    /// Selected nodes of the jumping run, in document order.
    pub fn selected(&self, a: &Sta, ix: &TreeIndex) -> Vec<NodeId> {
        if !self.accepting {
            return Vec::new();
        }
        let mut out: Vec<NodeId> = self
            .states
            .iter()
            .filter(|&(&v, &q)| a.selects(q, ix.label(v)))
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }
}

/// How a state lets the automaton move without gaining information.
enum SkipShape {
    /// Loops `(q, q)` on `keep`; jump to top-most nodes labelled outside it.
    Both { essential: LabelSet },
    /// Loops `(q, q⊤)`; walk the left-most (first-child) path.
    LeftSpine { essential: LabelSet },
    /// Loops `(q⊤, q)`; walk the right-most (next-sibling) path.
    RightSpine { essential: LabelSet },
    /// No skip possible.
    None,
}

/// Pre-computed per-state skip classification.
struct SkipPlan {
    shapes: Vec<SkipShape>,
    sink: Option<StateId>,
}

impl SkipPlan {
    fn new(a: &Sta) -> Self {
        let q_top = a.states().find(|&q| a.is_td_universal(q));
        let sink = a.states().find(|&q| a.is_td_sink(q));
        let full = LabelSet::empty(a.alphabet_size).complement();
        let shapes = a
            .states()
            .map(|q| {
                // Labels with pure (q,q) loops and no selection.
                let mut loop_both = LabelSet::empty(a.alphabet_size);
                let mut loop_left = LabelSet::empty(a.alphabet_size);
                let mut loop_right = LabelSet::empty(a.alphabet_size);
                for t in &a.delta {
                    if t.q != q {
                        continue;
                    }
                    if (t.q1, t.q2) == (q, q) {
                        loop_both.union_with(&t.labels);
                    }
                    if Some(t.q2) == q_top && t.q1 == q {
                        loop_left.union_with(&t.labels);
                    }
                    if Some(t.q1) == q_top && t.q2 == q {
                        loop_right.union_with(&t.labels);
                    }
                }
                let sel = &a.select[q as usize];
                loop_both.subtract(sel);
                loop_left.subtract(sel);
                loop_right.subtract(sel);
                // Case priority follows Algorithm B.1.
                if !loop_both.is_empty() {
                    let mut essential = full.clone();
                    essential.subtract(&loop_both);
                    SkipShape::Both { essential }
                } else if !loop_left.is_empty() && q_top.is_some() {
                    let mut essential = full.clone();
                    essential.subtract(&loop_left);
                    SkipShape::LeftSpine { essential }
                } else if !loop_right.is_empty() && q_top.is_some() {
                    let mut essential = full.clone();
                    essential.subtract(&loop_right);
                    SkipShape::RightSpine { essential }
                } else {
                    SkipShape::None
                }
            })
            .collect();
        Self { shapes, sink }
    }
}

/// Executes a minimal complete TDSTA visiting (approximately) only the
/// relevant nodes, via the index's jumping functions (Algorithm B.1).
///
/// Two deliberate deviations from the paper's pseudo-code, both required for
/// correctness (see DESIGN.md):
///
/// * case C uses `rt` (the pseudo-code's line 23 repeats `lt` — an erratum);
/// * skipping additionally requires the looping state to be in `B`, and a
///   spine that runs off the tree (`Ω`) fails unless the state is in `B`;
///   otherwise a rejecting run could be mistaken for an accepting one.
///
/// # Panics
/// Panics if the automaton is not top-down deterministic and complete.
pub fn topdown_jump(a: &Sta, ix: &TreeIndex) -> JumpRun {
    let table = a.td_table().expect("complete TDSTA required");
    let plan = SkipPlan::new(a);
    let mut stats = JumpStats::default();
    let mut states: FxHashMap<NodeId, StateId> = FxHashMap::default();

    // Worklist of (node, state) pairs to evaluate.
    let mut work: Vec<(NodeId, StateId)> = Vec::new();
    let mut frontier_buf: Vec<NodeId> = Vec::new();
    let ok = seed_frontier(
        a,
        &plan,
        ix,
        ix.root(),
        table.init,
        &mut stats,
        &mut frontier_buf,
    );
    if !ok {
        return JumpRun {
            states: FxHashMap::default(),
            accepting: false,
            stats,
        };
    }
    for &f in &frontier_buf {
        work.push((f, table.init));
    }

    let mut accepting = true;
    'outer: while let Some((v, q)) = work.pop() {
        stats.visited += 1;
        states.insert(v, q);
        let (q1, q2) = table.step(q, ix.label(v));
        for (child, qc) in [(ix.first_child(v), q1), (ix.next_sibling(v), q2)] {
            if plan.sink == Some(qc) {
                accepting = false;
                break 'outer;
            }
            if child == NONE {
                if !a.bottom[qc as usize] {
                    accepting = false;
                    break 'outer;
                }
                continue;
            }
            frontier_buf.clear();
            if !seed_frontier(a, &plan, ix, child, qc, &mut stats, &mut frontier_buf) {
                accepting = false;
                break 'outer;
            }
            for &f in &frontier_buf {
                work.push((f, qc));
            }
        }
    }

    if !accepting {
        states.clear();
    }
    JumpRun {
        states,
        accepting,
        stats,
    }
}

/// Computes the top-most relevant nodes of the binary subtree rooted at `v`,
/// entered in state `q` (the `relevant nodes` function of Algorithm B.1).
/// Returns false if a rejecting leaf is certain (Failure).
fn seed_frontier(
    a: &Sta,
    plan: &SkipPlan,
    ix: &TreeIndex,
    v: NodeId,
    q: StateId,
    stats: &mut JumpStats,
    out: &mut Vec<NodeId>,
) -> bool {
    match &plan.shapes[q as usize] {
        SkipShape::Both { essential } => {
            // Skipping drops whole subtrees whose leaves all get `q`.
            if !a.bottom[q as usize] {
                out.push(v);
                return true;
            }
            if essential.contains(ix.label(v)) {
                out.push(v);
                return true;
            }
            stats.jumps += 1;
            let mut cur = ix.jump_desc_bin(v, essential);
            while cur != NONE {
                out.push(cur);
                stats.jumps += 1;
                cur = ix.jump_following_bin(cur, essential, v);
            }
            true
        }
        SkipShape::LeftSpine { essential } => {
            if essential.contains(ix.label(v)) {
                out.push(v);
                return true;
            }
            stats.jumps += 1;
            let hit = ix.jump_leftmost(v, essential);
            if hit == NONE {
                // The spine ends in a `#` leaf carrying `q`.
                a.bottom[q as usize]
            } else {
                out.push(hit);
                true
            }
        }
        SkipShape::RightSpine { essential } => {
            if essential.contains(ix.label(v)) {
                out.push(v);
                return true;
            }
            stats.jumps += 1;
            let hit = ix.jump_rightmost(v, essential);
            if hit == NONE {
                a.bottom[q as usize]
            } else {
                out.push(hit);
                true
            }
        }
        SkipShape::None => {
            out.push(v);
            true
        }
    }
}
