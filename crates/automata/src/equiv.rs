//! Exact equivalence of selecting tree automata.
//!
//! Route: encode selection into labels (App. A.1), view the recognizer as a
//! nondeterministic bottom-up automaton, determinize by subset construction,
//! then decide language equivalence of the two complete BDTAs by exploring
//! reachable state *pairs* — two automata differ iff some reachable pair
//! disagrees on finality. This is the effective form of Lemma A.1, used by
//! the test-suite to validate minimization; it is exponential in the worst
//! case and intended for small automata.

use crate::recognizer::encode;
use crate::sta::{Sta, StateId};
use xwq_index::FxHashMap;
use xwq_xml::LabelId;

/// A complete deterministic bottom-up recognizer over subset states.
#[derive(Clone, Debug)]
pub struct SubsetBdta {
    /// Number of subset states.
    pub n_states: u32,
    /// Alphabet size.
    pub alphabet_size: usize,
    /// `delta[(q1, q2, l)] = q` (total).
    pub delta: FxHashMap<(StateId, StateId, LabelId), StateId>,
    /// The leaf state (set of `B`-states of the source automaton).
    pub init: StateId,
    /// Finality per subset state (`S ∩ T ≠ ∅`).
    pub is_final: Vec<bool>,
}

/// Determinizes an arbitrary STA-as-recognizer bottom-up.
///
/// Subset semantics: a state set `S` at a node means "exactly the states from
/// which the automaton can accept this subtree bottom-up".
pub fn determinize_bu(a: &Sta) -> SubsetBdta {
    let alphabet_size = a.alphabet_size;
    // Intern subsets as sorted Vec<StateId>.
    let mut ids: FxHashMap<Vec<StateId>, StateId> = FxHashMap::default();
    let mut sets: Vec<Vec<StateId>> = Vec::new();
    let mut intern = |s: Vec<StateId>, sets: &mut Vec<Vec<StateId>>| -> (StateId, bool) {
        if let Some(&id) = ids.get(&s) {
            return (id, false);
        }
        let id = sets.len() as StateId;
        ids.insert(s.clone(), id);
        sets.push(s);
        (id, true)
    };

    let leaf: Vec<StateId> = a.states().filter(|&q| a.bottom[q as usize]).collect();
    let (init, _) = intern(leaf, &mut sets);

    let mut delta: FxHashMap<(StateId, StateId, LabelId), StateId> = FxHashMap::default();
    // Fixpoint: keep combining known subsets until no new subset appears.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = sets.len() as StateId;
        for s1 in 0..snapshot {
            for s2 in 0..snapshot {
                for l in 0..alphabet_size as LabelId {
                    if delta.contains_key(&(s1, s2, l)) {
                        continue;
                    }
                    let mut next: Vec<StateId> = Vec::new();
                    for t in &a.delta {
                        if t.labels.contains(l)
                            && sets[s1 as usize].contains(&t.q1)
                            && sets[s2 as usize].contains(&t.q2)
                            && !next.contains(&t.q)
                        {
                            next.push(t.q);
                        }
                    }
                    next.sort_unstable();
                    let (id, fresh) = intern(next, &mut sets);
                    delta.insert((s1, s2, l), id);
                    changed |= fresh;
                }
            }
        }
    }
    // Complete the table for subsets discovered in the last round.
    let n = sets.len() as StateId;
    for s1 in 0..n {
        for s2 in 0..n {
            for l in 0..alphabet_size as LabelId {
                if let std::collections::hash_map::Entry::Vacant(e) = delta.entry((s1, s2, l)) {
                    // All successor sets were already interned by the loop
                    // above; a vacant entry can only mean the empty set.
                    let mut next: Vec<StateId> = Vec::new();
                    for t in &a.delta {
                        if t.labels.contains(l)
                            && sets[s1 as usize].contains(&t.q1)
                            && sets[s2 as usize].contains(&t.q2)
                            && !next.contains(&t.q)
                        {
                            next.push(t.q);
                        }
                    }
                    next.sort_unstable();
                    let id = *ids.get(&next).expect("fixpoint interned all subsets");
                    e.insert(id);
                }
            }
        }
    }
    let is_final = sets
        .iter()
        .map(|s| s.iter().any(|&q| a.top[q as usize]))
        .collect();
    SubsetBdta {
        n_states: sets.len() as u32,
        alphabet_size,
        delta,
        init,
        is_final,
    }
}

/// Language equivalence of two complete subset-BDTAs by reachable-pair
/// exploration.
pub fn bdta_equiv(a: &SubsetBdta, b: &SubsetBdta) -> bool {
    assert_eq!(a.alphabet_size, b.alphabet_size);
    let mut pairs: Vec<(StateId, StateId)> = vec![(a.init, b.init)];
    let mut seen: std::collections::HashSet<(StateId, StateId)> = pairs.iter().copied().collect();
    let mut i = 0;
    while i < pairs.len() {
        // Combine every known pair with every known pair under every label.
        // (Quadratic, but the automata here are tiny.)
        let (x, y) = pairs[i];
        if a.is_final[x as usize] != b.is_final[y as usize] {
            return false;
        }
        let snapshot = pairs.len();
        for j in 0..snapshot {
            let (x2, y2) = pairs[j];
            for l in 0..a.alphabet_size as LabelId {
                for (p, q) in [
                    (a.delta[&(x, x2, l)], b.delta[&(y, y2, l)]),
                    (a.delta[&(x2, x, l)], b.delta[&(y2, y, l)]),
                ] {
                    if seen.insert((p, q)) {
                        pairs.push((p, q));
                    }
                }
            }
        }
        i += 1;
    }
    // All reachable pairs already checked for finality agreement above,
    // except ones appended after their scan; check the tail.
    pairs
        .iter()
        .all(|&(x, y)| a.is_final[x as usize] == b.is_final[y as usize])
}

/// Exact STA equivalence (`A ≡ A'` of Def. 2.3): same language and same
/// selected nodes on every tree. Implements Lemma A.1 via [`encode`] +
/// [`determinize_bu`] + [`bdta_equiv`].
pub fn sta_equiv(a: &Sta, b: &Sta) -> bool {
    assert_eq!(a.alphabet_size, b.alphabet_size);
    bdta_equiv(&determinize_bu(&encode(a)), &determinize_bu(&encode(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use xwq_xml::LabelSet;

    #[test]
    fn automaton_equals_itself() {
        let (a, _) = examples::a_descendant_b();
        assert!(sta_equiv(&a, &a));
        let (b, _) = examples::a_with_b_descendant();
        assert!(sta_equiv(&b, &b));
    }

    #[test]
    fn different_queries_differ() {
        let (a, _) = examples::a_descendant_b();
        let (b, _) = examples::a_with_b_descendant();
        assert!(!sta_equiv(&a, &b));
    }

    #[test]
    fn selection_matters_not_just_language() {
        // Same language (all trees), different selection (b vs nothing).
        let (a, _) = examples::a_descendant_b();
        let mut no_sel = a.clone();
        no_sel.select = vec![LabelSet::empty(a.alphabet_size); a.n_states as usize];
        assert!(!sta_equiv(&a, &no_sel));
    }

    #[test]
    fn state_renaming_preserves_equivalence() {
        let (a, _) = examples::a_descendant_b();
        // Swap state ids 0 and 1.
        let mut b = Sta::new(2, a.alphabet_size);
        let sw = |q: u32| 1 - q;
        for q in a.states() {
            b.top[sw(q) as usize] = a.top[q as usize];
            b.bottom[sw(q) as usize] = a.bottom[q as usize];
            b.select[sw(q) as usize] = a.select[q as usize].clone();
        }
        for t in &a.delta {
            b.add(sw(t.q), t.labels.clone(), sw(t.q1), sw(t.q2));
        }
        assert!(sta_equiv(&a, &b));
    }

    #[test]
    fn redundant_state_still_equivalent() {
        // Duplicate q1 of A_{//a//b} as q2; route half the a-transitions there.
        let (a, al) = examples::a_descendant_b();
        let n = al.len();
        let mut b = Sta::new(3, n);
        b.top[0] = true;
        b.bottom = vec![true, true, true];
        let la = LabelSet::singleton(n, al.lookup("a").unwrap());
        let lb = LabelSet::singleton(n, al.lookup("b").unwrap());
        b.add(0, la.clone(), 2, 0);
        b.add(0, la.complement(), 0, 0);
        for q in [1u32, 2] {
            b.add_selecting(q, lb.clone(), 1, 2);
            b.add(q, lb.complement(), 2, 1);
        }
        assert!(sta_equiv(&a, &b));
    }

    #[test]
    fn dtd_recognizer_language() {
        // The DTD automaton accepts exactly trees rooted at `a`.
        let (dtd, al) = examples::dtd_root_a();
        let det = determinize_bu(&encode(&dtd));
        // Build "root is b" variant and check difference.
        let n = al.len();
        let mut other = Sta::new(3, n);
        other.top[0] = true;
        other.bottom[1] = true;
        let lb = LabelSet::singleton(n, al.lookup("b").unwrap());
        let full = LabelSet::empty(n).complement();
        other.add(0, lb.clone(), 1, 1);
        other.add(0, lb.complement(), 2, 2);
        other.add(1, full.clone(), 1, 1);
        other.add(2, full, 2, 2);
        assert!(!sta_equiv(&dtd, &other));
        assert!(det.n_states >= 2);
    }
}
