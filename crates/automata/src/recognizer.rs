//! The recognizer encoding `Â` over `Σ ∪ Σ̂` (Appendix A.1).
//!
//! Selection is encoded into labels: where `A` selects a node labelled `l`,
//! `Â` accepts the tree with that node relabelled `l̂`. Hatted label ids are
//! `l + |Σ|`. `Â` has an empty selection set; Lemma A.1 then reduces STA
//! equivalence to recognizer language equivalence, which [`crate::equiv`]
//! decides exactly.

use crate::sta::Sta;
use xwq_xml::{LabelId, LabelSet};

/// Hatted id of label `l` in the doubled alphabet.
#[inline]
pub fn hat(l: LabelId, sigma: usize) -> LabelId {
    l + sigma as LabelId
}

/// True if `l` is a hatted label of the doubled alphabet.
#[inline]
pub fn is_hat(l: LabelId, sigma: usize) -> bool {
    (l as usize) >= sigma
}

/// Encodes an STA into its recognizer `Â` over the doubled alphabet.
///
/// For each transition `(q, L, q₁, q₂)`: labels of `L` on which `q` selects
/// move to their hatted version; the rest stay plain. No sink-completion is
/// performed (the subset construction in [`crate::equiv`] treats missing
/// transitions as rejection, which is equivalent).
pub fn encode(a: &Sta) -> Sta {
    let sigma = a.alphabet_size;
    let doubled = 2 * sigma;
    let mut out = Sta::new(a.n_states, doubled);
    out.top = a.top.clone();
    out.bottom = a.bottom.clone();
    for t in &a.delta {
        let sel = &a.select[t.q as usize];
        let mut plain = LabelSet::empty(doubled);
        let mut hatted = LabelSet::empty(doubled);
        for l in t.labels.iter() {
            if sel.contains(l) {
                hatted.insert(hat(l, sigma));
            } else {
                plain.insert(l);
            }
        }
        if !plain.is_empty() {
            out.add(t.q, plain, t.q1, t.q2);
        }
        if !hatted.is_empty() {
            out.add(t.q, hatted, t.q1, t.q2);
        }
    }
    out
}

/// Decodes a recognizer over `Σ ∪ Σ̂` back into a selecting automaton over
/// `Σ` (the inverse translation sketched in Lemma A.3). Requires the
/// recognizer to be selecting-unambiguous for the result to be equivalent.
pub fn decode(a_hat: &Sta, sigma: usize) -> Sta {
    debug_assert_eq!(a_hat.alphabet_size, 2 * sigma);
    let mut out = Sta::new(a_hat.n_states, sigma);
    out.top = a_hat.top.clone();
    out.bottom = a_hat.bottom.clone();
    for t in &a_hat.delta {
        let mut plain = LabelSet::empty(sigma);
        let mut selected = LabelSet::empty(sigma);
        for l in t.labels.iter() {
            if is_hat(l, sigma) {
                selected.insert(l - sigma as LabelId);
            } else {
                plain.insert(l);
            }
        }
        if !plain.is_empty() {
            out.add(t.q, plain, t.q1, t.q2);
        }
        if !selected.is_empty() {
            out.add_selecting(t.q, selected, t.q1, t.q2);
        }
    }
    out
}

/// Checks selecting-unambiguity of a *deterministic top-down* recognizer:
/// no state may reach, for the same label, both its plain and hatted
/// version with identical continuations. (Lemma A.2 guarantees this for
/// automata produced by [`encode`]; decode relies on it.)
pub fn td_selecting_unambiguous(a_hat: &Sta, sigma: usize) -> bool {
    for q in a_hat.states() {
        for l in 0..sigma as LabelId {
            let plain = a_hat.dest(q, l);
            let hatted = a_hat.dest(q, hat(l, sigma));
            if !plain.is_empty() && !hatted.is_empty() {
                // Both versions lead somewhere: ambiguous only if both can
                // accept — conservatively report ambiguity when the
                // continuations coincide.
                if plain.iter().any(|p| hatted.contains(p)) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn encode_moves_selection_into_hats() {
        let (a, al) = examples::a_descendant_b();
        let sigma = al.len();
        let hat_b = hat(al.lookup("b").unwrap(), sigma);
        let enc = encode(&a);
        assert_eq!(enc.alphabet_size, 2 * sigma);
        assert!(enc.select.iter().all(|s| s.is_empty()));
        // q1 on b̂ keeps looping; q1 on plain b also loops via the Σ∖{b} rule?
        // No: plain b is removed from the selecting transition but kept by
        // the non-selecting catch-all? In Ex. 2.1, q1 has both `{b} ⇒` and
        // `Σ∖{b} →`; after encoding, q1 reads b̂ from the first and plain b
        // from nothing — plain b under q1 must be dead.
        assert_eq!(enc.dest(1, hat_b), vec![(1, 1)]);
        assert_eq!(enc.dest(1, al.lookup("b").unwrap()), vec![]);
        // q0 never selects: plain labels survive, hatted are dead.
        assert_eq!(enc.dest(0, al.lookup("a").unwrap()), vec![(1, 0)]);
        assert_eq!(enc.dest(0, hat(al.lookup("a").unwrap(), sigma)), vec![]);
    }

    #[test]
    fn decode_inverts_encode() {
        let (a, _) = examples::a_descendant_b();
        let back = decode(&encode(&a), a.alphabet_size);
        assert_eq!(back.n_states, a.n_states);
        // Same destination sets and selection everywhere.
        for q in a.states() {
            for l in 0..a.alphabet_size as LabelId {
                let mut d1 = a.dest(q, l);
                let mut d2 = back.dest(q, l);
                d1.sort_unstable();
                d2.sort_unstable();
                assert_eq!(d1, d2, "dest({q},{l})");
                assert_eq!(a.selects(q, l), back.selects(q, l), "sel({q},{l})");
            }
        }
    }

    #[test]
    fn encoded_recognizer_is_unambiguous() {
        let (a, _) = examples::a_descendant_b();
        assert!(td_selecting_unambiguous(&encode(&a), a.alphabet_size));
        let (a, _) = examples::a_with_b_descendant();
        assert!(td_selecting_unambiguous(&encode(&a), a.alphabet_size));
    }
}
