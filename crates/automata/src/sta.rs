//! The selecting-tree-automaton model (Def. 2.1–2.4).

use xwq_xml::{LabelId, LabelSet};

/// Automaton state identifier.
pub type StateId = u32;

/// A transition `(q, L, q₁, q₂)`: in state `q` at a node with label in `L`,
/// send `q₁` to the first binary child (`π·1`) and `q₂` to the second (`π·2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub q: StateId,
    /// Label guard `L ⊆ Σ` (non-empty).
    pub labels: LabelSet,
    /// State for the first child.
    pub q1: StateId,
    /// State for the second child.
    pub q2: StateId,
}

/// A selecting tree automaton `A = (Σ, Q, T, B, S, δ)` (Def. 2.1).
///
/// Σ is implicit: label ids range over `0..alphabet_size`. `select[q]` is the
/// set of labels `l` with `(q, l) ∈ S`.
#[derive(Clone, Debug)]
pub struct Sta {
    /// Number of states `|Q|`.
    pub n_states: u32,
    /// Size of the alphabet Σ.
    pub alphabet_size: usize,
    /// Membership of the top-state set `T`.
    pub top: Vec<bool>,
    /// Membership of the bottom-state set `B`.
    pub bottom: Vec<bool>,
    /// Selecting configurations: `select[q]` = labels on which `q` selects.
    pub select: Vec<LabelSet>,
    /// The transition set δ.
    pub delta: Vec<Transition>,
}

impl Sta {
    /// Creates an automaton with `n_states` states and no transitions.
    pub fn new(n_states: u32, alphabet_size: usize) -> Self {
        Self {
            n_states,
            alphabet_size,
            top: vec![false; n_states as usize],
            bottom: vec![false; n_states as usize],
            select: vec![LabelSet::empty(alphabet_size); n_states as usize],
            delta: Vec::new(),
        }
    }

    /// Adds a transition `q, L → (q₁, q₂)`.
    pub fn add(&mut self, q: StateId, labels: LabelSet, q1: StateId, q2: StateId) {
        debug_assert!(!labels.is_empty(), "transition guards must be non-empty");
        self.delta.push(Transition { q, labels, q1, q2 });
    }

    /// Adds a selecting transition `q, L ⇒ (q₁, q₂)`: the transition plus
    /// `(q, l) ∈ S` for every `l ∈ L`.
    pub fn add_selecting(&mut self, q: StateId, labels: LabelSet, q1: StateId, q2: StateId) {
        self.select[q as usize].union_with(&labels);
        self.add(q, labels, q1, q2);
    }

    /// Iterator over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        0..self.n_states
    }

    /// The destination set `δ(q, l)` (Def. after 2.1).
    pub fn dest(&self, q: StateId, l: LabelId) -> Vec<(StateId, StateId)> {
        let mut out = Vec::new();
        for t in &self.delta {
            if t.q == q && t.labels.contains(l) && !out.contains(&(t.q1, t.q2)) {
                out.push((t.q1, t.q2));
            }
        }
        out
    }

    /// The source set `δ(q₁, q₂, l)`.
    pub fn src(&self, q1: StateId, q2: StateId, l: LabelId) -> Vec<StateId> {
        let mut out = Vec::new();
        for t in &self.delta {
            if t.q1 == q1 && t.q2 == q2 && t.labels.contains(l) && !out.contains(&t.q) {
                out.push(t.q);
            }
        }
        out
    }

    /// True if `(q, l) ∈ S`.
    #[inline]
    pub fn selects(&self, q: StateId, l: LabelId) -> bool {
        self.select[q as usize].contains(l)
    }

    /// States in `T`.
    pub fn top_states(&self) -> Vec<StateId> {
        self.states().filter(|&q| self.top[q as usize]).collect()
    }

    /// States in `B`.
    pub fn bottom_states(&self) -> Vec<StateId> {
        self.states().filter(|&q| self.bottom[q as usize]).collect()
    }

    /// Top-down deterministic: `|T| = 1` and every `δ(q, l)` is a singleton.
    pub fn is_tdsta(&self) -> bool {
        self.top_states().len() == 1
            && self
                .states()
                .all(|q| (0..self.alphabet_size as u32).all(|l| self.dest(q, l).len() <= 1))
    }

    /// Top-down complete: every `δ(q, l)` is non-empty.
    pub fn is_topdown_complete(&self) -> bool {
        self.states()
            .all(|q| (0..self.alphabet_size as u32).all(|l| !self.dest(q, l).is_empty()))
    }

    /// Bottom-up deterministic: `|B| = 1` and every `δ(q₁, q₂, l)` is at most
    /// a singleton.
    pub fn is_bdsta(&self) -> bool {
        if self.bottom_states().len() != 1 {
            return false;
        }
        for q1 in self.states() {
            for q2 in self.states() {
                for l in 0..self.alphabet_size as u32 {
                    if self.src(q1, q2, l).len() > 1 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Bottom-up complete: every `δ(q₁, q₂, l)` is non-empty.
    pub fn is_bottomup_complete(&self) -> bool {
        for q1 in self.states() {
            for q2 in self.states() {
                for l in 0..self.alphabet_size as u32 {
                    if self.src(q1, q2, l).is_empty() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Non-changing state (Def. 2.4): `∀l. δ(q, l) = {(q, q)}`.
    pub fn is_non_changing(&self, q: StateId) -> bool {
        (0..self.alphabet_size as u32).all(|l| self.dest(q, l) == vec![(q, q)])
    }

    /// Top-down universal state: non-changing and in `B` (accepts `T(Σ)`,
    /// selects nothing — requires an empty selection set too).
    pub fn is_td_universal(&self, q: StateId) -> bool {
        self.is_non_changing(q) && self.bottom[q as usize] && self.select[q as usize].is_empty()
    }

    /// Top-down sink state: non-changing and not in `B` (accepts nothing).
    pub fn is_td_sink(&self, q: StateId) -> bool {
        self.is_non_changing(q) && !self.bottom[q as usize]
    }

    /// Makes the automaton top-down complete by routing every missing
    /// `(q, l)` pair to a (possibly fresh) sink state. Returns the sink id.
    pub fn complete_topdown(&mut self) -> StateId {
        let sink = match self.states().find(|&q| self.is_td_sink(q)) {
            Some(q) => q,
            None => {
                let q = self.n_states;
                self.n_states += 1;
                self.top.push(false);
                self.bottom.push(false);
                self.select.push(LabelSet::empty(self.alphabet_size));
                self.add(q, full_set(self.alphabet_size), q, q);
                q
            }
        };
        for q in 0..self.n_states {
            let mut missing = full_set(self.alphabet_size);
            for t in &self.delta {
                if t.q == q {
                    missing.subtract(&t.labels);
                }
            }
            if !missing.is_empty() {
                self.add(q, missing, sink, sink);
            }
        }
        sink
    }

    /// The *essential labels* of `q` (§2, after Def. 2.4): labels `l` such
    /// that `δ(q, l)` contains a pair other than `(q, q)`, or on which `q`
    /// selects.
    pub fn essential_labels(&self, q: StateId) -> LabelSet {
        let mut out = self.select[q as usize].clone();
        for t in &self.delta {
            if t.q == q && (t.q1 != q || t.q2 != q) {
                out.union_with(&t.labels);
            }
        }
        out
    }

    /// Restriction `A[q]` (Def. A.2): `T` replaced by `{q}`, trimmed to
    /// states reachable from `q`.
    pub fn restrict(&self, q: StateId) -> Sta {
        let mut reach = vec![false; self.n_states as usize];
        let mut work = vec![q];
        reach[q as usize] = true;
        while let Some(p) = work.pop() {
            for t in &self.delta {
                if t.q == p {
                    for nq in [t.q1, t.q2] {
                        if !reach[nq as usize] {
                            reach[nq as usize] = true;
                            work.push(nq);
                        }
                    }
                }
            }
        }
        // Remap reachable states to dense ids.
        let mut map = vec![u32::MAX; self.n_states as usize];
        let mut n = 0u32;
        for s in self.states() {
            if reach[s as usize] {
                map[s as usize] = n;
                n += 1;
            }
        }
        let mut out = Sta::new(n, self.alphabet_size);
        out.top[map[q as usize] as usize] = true;
        for s in self.states() {
            if reach[s as usize] {
                let m = map[s as usize] as usize;
                out.bottom[m] = self.bottom[s as usize];
                out.select[m] = self.select[s as usize].clone();
            }
        }
        for t in &self.delta {
            if reach[t.q as usize] {
                out.add(
                    map[t.q as usize],
                    t.labels.clone(),
                    map[t.q1 as usize],
                    map[t.q2 as usize],
                );
            }
        }
        out
    }

    /// Dense top-down lookup table: `table[q * |Σ| + l] = (q1, q2)`.
    ///
    /// Returns `None` unless the automaton is top-down deterministic and
    /// complete.
    pub fn td_table(&self) -> Option<TdTable> {
        let sz = self.n_states as usize * self.alphabet_size;
        let mut table = vec![(u32::MAX, u32::MAX); sz];
        for t in &self.delta {
            for l in t.labels.iter() {
                let cell = &mut table[t.q as usize * self.alphabet_size + l as usize];
                if *cell != (u32::MAX, u32::MAX) && *cell != (t.q1, t.q2) {
                    return None; // nondeterministic
                }
                *cell = (t.q1, t.q2);
            }
        }
        if table.contains(&(u32::MAX, u32::MAX)) {
            return None; // incomplete
        }
        let init = match &self.top_states()[..] {
            [q] => *q,
            _ => return None,
        };
        Some(TdTable {
            table,
            alphabet_size: self.alphabet_size,
            init,
        })
    }
}

/// Σ as a set.
pub(crate) fn full_set(alphabet_size: usize) -> LabelSet {
    LabelSet::empty(alphabet_size).complement()
}

/// Compiled top-down transition table for a complete TDSTA.
#[derive(Clone, Debug)]
pub struct TdTable {
    table: Vec<(StateId, StateId)>,
    alphabet_size: usize,
    /// The unique top state.
    pub init: StateId,
}

impl TdTable {
    /// `δ(q, l)` as the unique pair.
    #[inline]
    pub fn step(&self, q: StateId, l: LabelId) -> (StateId, StateId) {
        self.table[q as usize * self.alphabet_size + l as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn a_desc_b_is_tdsta_not_bdsta() {
        let (a, _) = examples::a_descendant_b();
        assert!(a.is_tdsta());
        assert!(a.is_topdown_complete());
        assert!(!a.is_bdsta(), "B is not a singleton (Ex. 2.1 discussion)");
    }

    #[test]
    fn a_filter_b_is_bdsta() {
        let (a, _) = examples::a_with_b_descendant();
        assert!(a.is_bdsta());
        assert!(a.is_bottomup_complete());
        assert!(!a.is_tdsta(), "T is not a singleton");
    }

    #[test]
    fn dtd_recognizer_states_classified() {
        let (a, _) = examples::dtd_root_a();
        // q0=0, q_top=1, q_bot=2 per examples.rs construction.
        assert!(!a.is_non_changing(0));
        assert!(a.is_td_universal(1));
        assert!(a.is_td_sink(2));
        assert!(!a.is_td_sink(1));
        assert!(!a.is_td_universal(2));
    }

    #[test]
    fn essential_labels_of_a_desc_b() {
        let (a, alpha) = examples::a_descendant_b();
        let la = alpha.lookup("a").unwrap();
        let lb = alpha.lookup("b").unwrap();
        // q0 changes state exactly on `a`.
        let e0 = a.essential_labels(0);
        assert_eq!(e0.iter().collect::<Vec<_>>(), vec![la]);
        // q1 never changes state but selects on `b`.
        let e1 = a.essential_labels(1);
        assert_eq!(e1.iter().collect::<Vec<_>>(), vec![lb]);
    }

    #[test]
    fn dest_and_src_lookups() {
        let (a, alpha) = examples::a_descendant_b();
        let la = alpha.lookup("a").unwrap();
        let lc = alpha.lookup("c").unwrap();
        assert_eq!(a.dest(0, la), vec![(1, 0)]);
        assert_eq!(a.dest(0, lc), vec![(0, 0)]);
        assert_eq!(a.src(1, 0, la), vec![0]);
        assert_eq!(a.src(0, 0, la), vec![]);
    }

    #[test]
    fn complete_topdown_adds_sink() {
        let mut a = Sta::new(1, 2);
        a.top[0] = true;
        a.bottom[0] = true;
        a.add(0, LabelSet::singleton(2, 0), 0, 0);
        assert!(!a.is_topdown_complete());
        let sink = a.complete_topdown();
        assert!(a.is_topdown_complete());
        assert!(a.is_td_sink(sink));
        // Completing an already-complete automaton is a no-op on δ size.
        let before = a.delta.len();
        a.complete_topdown();
        assert_eq!(a.delta.len(), before);
    }

    #[test]
    fn td_table_round_trips_transitions() {
        let (a, alpha) = examples::a_descendant_b();
        let t = a.td_table().expect("complete TDSTA");
        let la = alpha.lookup("a").unwrap();
        let lb = alpha.lookup("b").unwrap();
        assert_eq!(t.init, 0);
        assert_eq!(t.step(0, la), (1, 0));
        assert_eq!(t.step(0, lb), (0, 0));
        assert_eq!(t.step(1, lb), (1, 1));
    }

    #[test]
    fn restriction_trims_unreachable() {
        let (a, _) = examples::a_descendant_b();
        // From q1, q0 is unreachable.
        let r = a.restrict(1);
        assert_eq!(r.n_states, 1);
        assert_eq!(r.top_states(), vec![0]);
        assert!(!r.select[0].is_empty(), "selection on b survives");
    }
}
