//! Selecting tree automata — the deterministic theory of the paper.
//!
//! * [`Sta`] — selecting tree automata over binary trees (Def. 2.1): top
//!   states `T`, bottom states `B`, selecting configurations `S ⊆ Q×Σ`, and
//!   transitions `(q, L, q₁, q₂)`.
//! * [`recognizer`] — the hat-alphabet encoding `Â` of App. A.1 that reduces
//!   STA equivalence/minimization to ordinary tree-automata problems.
//! * [`minimize`] — unique minimal TDSTA/BDSTA via selection-aware Moore
//!   refinement (App. A.2, Thm A.1).
//! * [`topdown`] — full deterministic top-down runs, top-down relevance
//!   (Lemma 3.1) and the jumping run `topdown_jump` (Alg. B.1, Thm 3.1).
//! * [`bottomup`] — bottom-up runs (Alg. B.2) and bottom-up relevance
//!   (Lemma 3.2, Thm 3.2).
//! * [`equiv`] — exact language/selection equivalence for deterministic
//!   automata (product construction + subset construction), used to validate
//!   minimization.
//! * [`examples`] — the automata the paper uses as running examples.
//!
//! Trees are the binary (first-child/next-sibling) view of a
//! [`xwq_index::TreeIndex`]; the `#` leaf is [`xwq_index::NONE`].

pub mod bottomup;
pub mod equiv;
pub mod examples;
pub mod minimize;
pub mod recognizer;
mod sta;
pub mod topdown;

pub use sta::{Sta, StateId, Transition};
