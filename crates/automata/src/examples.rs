//! The paper's running-example automata, over the alphabet `{a, b, c}`.

use crate::Sta;
use xwq_xml::{Alphabet, LabelSet};

/// The `{a, b, c}` alphabet used by the paper's examples.
pub fn abc_alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.intern("a");
    al.intern("b");
    al.intern("c");
    al
}

fn sets(al: &Alphabet, names: &[&str]) -> LabelSet {
    LabelSet::from_ids(al.len(), names.iter().map(|n| al.lookup(n).unwrap()))
}

/// Example 2.1 — `A_{//a//b}`, a top-down deterministic STA selecting all
/// `b`-descendants of `a`-nodes. States: `q0 = 0`, `q1 = 1`.
pub fn a_descendant_b() -> (Sta, Alphabet) {
    let al = abc_alphabet();
    let n = al.len();
    let mut a = Sta::new(2, n);
    a.top[0] = true;
    a.bottom[0] = true;
    a.bottom[1] = true;
    let la = sets(&al, &["a"]);
    let lb = sets(&al, &["b"]);
    a.add(0, la.clone(), 1, 0); // q0, {a}   -> (q1, q0)
    a.add(0, la.complement(), 0, 0); // q0, Σ∖{a} -> (q0, q0)
    a.add_selecting(1, lb.clone(), 1, 1); // q1, {b}   => (q1, q1)
    a.add(1, lb.complement(), 1, 1); // q1, Σ∖{b} -> (q1, q1)
    (a, al)
}

/// Example A.1 / B.1 — `A_{//a[.//b]}`, a bottom-up deterministic STA
/// selecting `a`-nodes with a `b` in their left (first-child) subtree,
/// i.e. the XPath query `//a[.//b]`.
///
/// **Erratum.** The paper's two-state transition table propagates the
/// "b seen" state only through *left* children, which misses `b`s reachable
/// through right (next-sibling) edges inside the descendant subtree; with
/// two states no BDSTA can simultaneously track "subtree contains b" and
/// keep selection exact. We use the minimal correct three-state automaton:
///
/// * `q0 = 0` — subtree contains no `b`;
/// * `q1 = 1` — the *left child's* subtree contains `b` (selecting on `a`);
/// * `q2 = 2` — the subtree contains `b`, but not via the left child.
pub fn a_with_b_descendant() -> (Sta, Alphabet) {
    let al = abc_alphabet();
    let n = al.len();
    let lb = sets(&al, &["b"]);
    let la = sets(&al, &["a"]);
    let mut a = Sta::new(3, n);
    a.top = vec![true, true, true];
    a.bottom[0] = true;
    let full = LabelSet::empty(n).complement();
    for l_state in 0..3u32 {
        for r_state in 0..3u32 {
            let left_has_b = l_state != 0;
            let right_has_b = r_state != 0;
            if left_has_b {
                // Any label: b is below-left.
                a.add(1, full.clone(), l_state, r_state);
            } else if right_has_b {
                // b below-right (and possibly here).
                a.add(2, full.clone(), l_state, r_state);
            } else {
                // b only if this node is b.
                a.add(2, lb.clone(), l_state, r_state);
                a.add(0, lb.complement(), l_state, r_state);
            }
        }
    }
    a.select[1] = la;
    (a, al)
}

/// §3's DTD recognizer for `<!ELEMENT a ANY>`: root must be `a`, anything
/// below. States: `q0 = 0`, `q⊤ = 1`, `q⊥ = 2`. No selection.
pub fn dtd_root_a() -> (Sta, Alphabet) {
    let al = abc_alphabet();
    let n = al.len();
    let mut a = Sta::new(3, n);
    a.top[0] = true;
    a.bottom[1] = true;
    let la = sets(&al, &["a"]);
    let full = LabelSet::empty(n).complement();
    a.add(0, la.clone(), 1, 1);
    a.add(0, la.complement(), 2, 2);
    a.add(1, full.clone(), 1, 1);
    a.add(2, full, 2, 2);
    (a, al)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_is_stable() {
        let al = abc_alphabet();
        assert_eq!(al.lookup("a"), Some(0));
        assert_eq!(al.lookup("b"), Some(1));
        assert_eq!(al.lookup("c"), Some(2));
    }

    #[test]
    fn selection_sets_match_paper() {
        let (a, al) = a_descendant_b();
        assert!(a.selects(1, al.lookup("b").unwrap()));
        assert!(!a.selects(0, al.lookup("b").unwrap()));
        let (a, al) = a_with_b_descendant();
        assert!(a.selects(1, al.lookup("a").unwrap()));
        assert!(!a.selects(0, al.lookup("a").unwrap()));
    }
}
