//! Concrete jumping-run scenarios from the paper's §3 narrative: the DTD
//! recognizer that only needs the root, and the staircase-join comparison
//! for `A_{//a//b}` (only top-most `a`s and their `b` descendants touched).

use xwq_automata::{examples, topdown};
use xwq_index::TreeIndex;
use xwq_xml::parse_seeded;

fn index(xml: &str) -> TreeIndex {
    TreeIndex::build(&parse_seeded(xml, &["a", "b", "c"]).unwrap())
}

#[test]
fn dtd_recognizer_touches_only_the_root() {
    // §3: "Since the automaton only changes state at the root node, only
    // this node is relevant; no information is gained at any other node."
    let (mut dtd, _) = examples::dtd_root_a();
    dtd.complete_topdown();
    let ix = index("<a><b><c/><c/></b><b/><c><b/></c></a>");
    let run = topdown::topdown_jump(&dtd, &ix);
    assert!(run.accepting);
    assert_eq!(
        run.states.keys().copied().collect::<Vec<_>>(),
        vec![0],
        "only the root is visited"
    );
    assert_eq!(run.stats.visited, 1);
}

#[test]
fn dtd_recognizer_rejects_wrong_root_immediately() {
    let (mut dtd, _) = examples::dtd_root_a();
    dtd.complete_topdown();
    let ix = index("<b><a/></b>");
    let run = topdown::topdown_jump(&dtd, &ix);
    assert!(!run.accepting);
    assert!(run.states.is_empty(), "rejecting runs return ∅ (Thm 3.1)");
}

#[test]
fn staircase_narrative_topmost_a_and_their_bs() {
    // §1: for //a//b "all top-most a-nodes and all their b-labeled
    // descendants are relevant" — plus descendant a's that re-change state
    // never exist (a is non-essential inside q1-regions), and b's outside
    // any a are never touched.
    let xml = "<c>\
                 <a><c><b/></c><a><b/></a></a>\
                 <b/>\
                 <c><b/></c>\
                 <a><b/></a>\
               </c>";
    // ids: c0 a1 c2 b3 a4 b5 b6 c7 b8 a9 b10
    let (a, _) = examples::a_descendant_b();
    let ix = index(xml);
    let run = topdown::topdown_jump(&a, &ix);
    assert!(run.accepting);
    let mut visited: Vec<u32> = run.states.keys().copied().collect();
    visited.sort_unstable();
    // Top-most a's: 1 and 9. Their b-descendants: 3, 5, 10. The nested a4
    // is NOT visited (a is non-essential in state q1), and the b's at 6, 8
    // (outside any a) are never touched.
    assert_eq!(visited, vec![1, 3, 5, 9, 10]);
    assert_eq!(run.selected(&a, &ix), vec![3, 5, 10]);
}

#[test]
fn acceptance_guards_on_spine_runs() {
    // A hand-built minimal TDSTA requiring "root's children chain contains
    // a b" — its searcher walks the right spine and must REJECT when the
    // spine runs off the tree (the Ω acceptance erratum of Alg. B.1).
    use xwq_automata::Sta;
    use xwq_xml::LabelSet;
    let sigma = 3;
    let mut a = Sta::new(3, sigma);
    // q0 at root: descend to chain searcher q1 on the left, # on the right.
    // q1: b found -> q2 (universal); otherwise keep walking right.
    a.top[0] = true;
    a.bottom[0] = true; // root-in-B irrelevant for the run itself
    a.bottom[2] = true;
    let full = LabelSet::empty(sigma).complement();
    let lb = LabelSet::singleton(sigma, 1);
    a.add(0, full.clone(), 1, 2);
    a.add(1, lb.clone(), 2, 2);
    a.add(1, lb.complement(), 2, 1);
    a.add(2, full, 2, 2);
    // q1 ∉ B: a chain without b must reject.
    let with_b = index("<a><c/><b/><c/></a>");
    let without_b = index("<a><c/><c/></a>");
    let run = topdown::topdown_jump(&a, &with_b);
    assert!(run.accepting, "chain containing b accepts");
    let run = topdown::topdown_jump(&a, &without_b);
    assert!(
        !run.accepting,
        "chain without b must reject, not silently skip"
    );
}
