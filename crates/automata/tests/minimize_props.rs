//! Randomized validation of Theorem A.1: minimization preserves exact
//! equivalence (language *and* selection), never grows the automaton, is
//! idempotent, and produces pairwise-inequivalent states.

use proptest::prelude::*;
use xwq_automata::equiv::sta_equiv;
use xwq_automata::minimize::{minimize_bdsta, minimize_tdsta};
use xwq_automata::Sta;
use xwq_xml::LabelSet;

const SIGMA: usize = 2;

/// Random complete TDSTA over a 2-letter alphabet with ≤4 states.
fn arb_tdsta() -> impl Strategy<Value = Sta> {
    let n = 4u32;
    let per_state = prop::collection::vec((0..n, 0..n, prop::bool::ANY), SIGMA);
    (
        prop::collection::vec(per_state, n as usize),
        prop::collection::vec(prop::bool::ANY, n as usize),
    )
        .prop_map(move |(rows, bottoms)| {
            let mut a = Sta::new(n, SIGMA);
            a.top[0] = true;
            for (q, b) in bottoms.iter().enumerate() {
                a.bottom[q] = *b;
            }
            for (q, row) in rows.iter().enumerate() {
                for (l, &(q1, q2, sel)) in row.iter().enumerate() {
                    let ls = LabelSet::singleton(SIGMA, l as u32);
                    if sel {
                        a.add_selecting(q as u32, ls, q1, q2);
                    } else {
                        a.add(q as u32, ls, q1, q2);
                    }
                }
            }
            a
        })
}

/// Random complete BDSTA: δ(q1,q2,l) ↦ q for all triples.
fn arb_bdsta() -> impl Strategy<Value = Sta> {
    let n = 3u32;
    let triples = prop::collection::vec(0..n, (n * n) as usize * SIGMA);
    (
        triples,
        prop::collection::vec(prop::bool::ANY, n as usize),
        prop::collection::vec(prop::bool::ANY, n as usize * SIGMA),
    )
        .prop_map(move |(dests, tops, sels)| {
            let mut a = Sta::new(n, SIGMA);
            a.bottom[0] = true;
            for (q, t) in tops.iter().enumerate() {
                a.top[q] = *t;
            }
            let mut i = 0;
            for q1 in 0..n {
                for q2 in 0..n {
                    for l in 0..SIGMA as u32 {
                        let q = dests[i];
                        i += 1;
                        let ls = LabelSet::singleton(SIGMA, l);
                        if sels[(q as usize) * SIGMA + l as usize] {
                            a.add_selecting(q, ls.clone(), q1, q2);
                        } else {
                            a.add(q, ls, q1, q2);
                        }
                    }
                }
            }
            a
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tdsta_minimization_is_sound_and_minimal(a in arb_tdsta()) {
        prop_assert!(a.is_tdsta() && a.is_topdown_complete());
        let m = minimize_tdsta(&a);
        prop_assert!(m.is_tdsta() && m.is_topdown_complete());
        prop_assert!(m.n_states <= a.n_states);
        prop_assert!(sta_equiv(&a, &m), "quotient must stay equivalent");
        // Idempotence.
        let m2 = minimize_tdsta(&m);
        prop_assert_eq!(m2.n_states, m.n_states);
        // Pairwise inequivalent states: restricting to different states
        // gives different automata.
        for q1 in m.states() {
            for q2 in m.states() {
                if q1 < q2 {
                    prop_assert!(
                        !sta_equiv(&m.restrict(q1), &m.restrict(q2)),
                        "states {} and {} should have been merged", q1, q2
                    );
                }
            }
        }
    }

    #[test]
    fn bdsta_minimization_is_sound_and_minimal(a in arb_bdsta()) {
        prop_assert!(a.is_bdsta() && a.is_bottomup_complete());
        let m = minimize_bdsta(&a);
        prop_assert!(m.is_bdsta() && m.is_bottomup_complete());
        prop_assert!(m.n_states <= a.n_states);
        prop_assert!(sta_equiv(&a, &m));
        let m2 = minimize_bdsta(&m);
        prop_assert_eq!(m2.n_states, m.n_states);
        // Pairwise inequivalence of the quotient's states as *top* choices.
        for q1 in m.states() {
            for q2 in m.states() {
                if q1 < q2 {
                    let mut r1 = m.clone();
                    r1.top = vec![false; m.n_states as usize];
                    r1.top[q1 as usize] = true;
                    let mut r2 = m.clone();
                    r2.top = vec![false; m.n_states as usize];
                    r2.top[q2 as usize] = true;
                    prop_assert!(
                        !sta_equiv(&r1, &r2),
                        "BU states {} and {} should have been merged", q1, q2
                    );
                }
            }
        }
    }

    #[test]
    fn minimal_sizes_agree_across_presentations(a in arb_tdsta()) {
        // Minimizing A and minimizing a state-renamed copy of A must give
        // automata of the same size (uniqueness up to isomorphism).
        let n = a.n_states;
        let mut b = Sta::new(n, SIGMA);
        let perm = |q: u32| (q + 1) % n;
        for q in a.states() {
            b.top[perm(q) as usize] = a.top[q as usize];
            b.bottom[perm(q) as usize] = a.bottom[q as usize];
            b.select[perm(q) as usize] = a.select[q as usize].clone();
        }
        for t in &a.delta {
            b.add(perm(t.q), t.labels.clone(), perm(t.q1), perm(t.q2));
        }
        // b's top set is a singleton at perm(0); still a TDSTA.
        prop_assert!(b.is_tdsta());
        let ma = minimize_tdsta(&a);
        let mb = minimize_tdsta(&b);
        prop_assert_eq!(ma.n_states, mb.n_states);
        prop_assert!(sta_equiv(&ma, &mb));
    }
}
