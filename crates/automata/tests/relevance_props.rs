//! Theorem 3.1 and Lemma 3.1/3.2 properties: the jumping run agrees with the
//! full run exactly on the relevant nodes, over random documents and random
//! minimal automata.

use proptest::prelude::*;
use xwq_automata::{bottomup, examples, minimize, topdown, Sta};
use xwq_index::{NodeId, TreeIndex};
use xwq_xml::{LabelSet, TreeBuilder};

const NAMES: [&str; 3] = ["a", "b", "c"];

/// Random document over {a,b,c} with the alphabet forced to contain all
/// three labels (so automata over the example alphabet always apply).
fn build_doc(ops: &[(u8, u8)], root_label: u8) -> TreeIndex {
    let mut b = TreeBuilder::new();
    // Fix the label ids to match `examples::abc_alphabet`.
    for n in NAMES {
        b.reserve(n);
    }
    b.open(NAMES[root_label as usize % 3]);
    let mut depth = 1usize;
    for &(pops, label) in ops {
        let pops = (pops as usize).min(depth - 1);
        for _ in 0..pops {
            b.close();
            depth -= 1;
        }
        b.open(NAMES[label as usize % 3]);
        depth += 1;
    }
    for _ in 0..depth {
        b.close();
    }
    TreeIndex::build(&b.finish())
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..4, 0u8..3), 0..120)
}

/// A random complete TDSTA over {a,b,c} with `n` states: for every (q, l)
/// pick a destination pair; make some states selecting on some labels;
/// all states bottom (so rejection never hides selection differences).
fn arb_tdsta(n: u32) -> impl Strategy<Value = Sta> {
    let per_state = prop::collection::vec((0..n, 0..n, prop::bool::ANY), 3usize);
    prop::collection::vec(per_state, n as usize).prop_map(move |rows| {
        let mut a = Sta::new(n, 3);
        a.top[0] = true;
        for q in 0..n {
            a.bottom[q as usize] = true;
        }
        for (q, row) in rows.iter().enumerate() {
            for (l, &(q1, q2, sel)) in row.iter().enumerate() {
                let ls = LabelSet::singleton(3, l as u32);
                if sel {
                    a.add_selecting(q as u32, ls, q1, q2);
                } else {
                    a.add(q as u32, ls, q1, q2);
                }
            }
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1 on the paper's minimal automaton A_{//a//b}: the jumping
    /// run visits *exactly* the relevant nodes and agrees with the full run.
    #[test]
    fn theorem_3_1_exact_on_paper_automaton(ops in arb_ops(), root in 0u8..3) {
        let ix = build_doc(&ops, root);
        let (a, _) = examples::a_descendant_b();
        let full = topdown::run_topdown(&a, &ix).unwrap();
        prop_assert!(full.accepting);
        let jump = topdown::topdown_jump(&a, &ix);
        prop_assert!(jump.accepting);
        let relevant = topdown::topdown_relevant(&a, &full, &ix);
        for v in 0..ix.len() as NodeId {
            let visited = jump.states.get(&v);
            if relevant[v as usize] {
                prop_assert_eq!(visited, Some(&full.states[v as usize]),
                    "relevant node {} missing or wrong", v);
            } else {
                prop_assert!(visited.is_none(), "irrelevant node {} visited", v);
            }
        }
        // Selected sets agree too.
        prop_assert_eq!(
            jump.selected(&a, &ix),
            topdown::selected_of_run(&a, &full, &ix)
        );
    }

    /// Soundness of the jumping run on arbitrary random minimal TDSTAs:
    /// every visited node carries the full run's state, every relevant node
    /// is visited, and the selected sets agree.
    #[test]
    fn jump_sound_on_random_minimal_tdsta(
        ops in arb_ops(),
        root in 0u8..3,
        a in arb_tdsta(3),
    ) {
        let ix = build_doc(&ops, root);
        let m = minimize::minimize_tdsta(&a);
        let full = topdown::run_topdown(&m, &ix).unwrap();
        let jump = topdown::topdown_jump(&m, &ix);
        prop_assert_eq!(jump.accepting, full.accepting);
        if !full.accepting {
            prop_assert!(jump.states.is_empty());
            return Ok(());
        }
        for (&v, &q) in &jump.states {
            prop_assert_eq!(q, full.states[v as usize], "state at visited {}", v);
        }
        let relevant = topdown::topdown_relevant(&m, &full, &ix);
        for v in 0..ix.len() as NodeId {
            if relevant[v as usize] {
                prop_assert!(jump.states.contains_key(&v), "relevant {} skipped", v);
            }
        }
        prop_assert_eq!(
            jump.selected(&m, &ix),
            topdown::selected_of_run(&m, &full, &ix)
        );
    }

    /// Lemma 3.2 sanity on the paper's BDSTA: selected nodes are relevant,
    /// and nodes in skippable states with skippable children are not.
    #[test]
    fn bottomup_relevance_contains_selection(ops in arb_ops(), root in 0u8..3) {
        let ix = build_doc(&ops, root);
        let (a, al) = examples::a_with_b_descendant();
        let run = bottomup::run_bottomup(&a, &ix).unwrap();
        let rel = bottomup::bottomup_relevant(&a, &run, &ix);
        let la = al.lookup("a").unwrap();
        for v in 0..ix.len() as NodeId {
            let selected = run.states[v as usize] == 1 && ix.label(v) == la;
            if selected {
                prop_assert!(rel[v as usize], "selected node {} must be relevant", v);
            }
        }
        // q0-rooted subtrees are entirely irrelevant (App. B.2 discussion).
        for v in 0..ix.len() as NodeId {
            if run.states[v as usize] == 0 {
                let end = ix.subtree_end(v);
                for d in v..end {
                    if run.states[d as usize] == 0 && !a.selects(0, ix.label(d)) {
                        prop_assert!(
                            !rel[d as usize] || relevant_by_lemma_edge(&run, &ix, d),
                            "q0 node {} marked relevant", d
                        );
                    }
                }
            }
        }
    }
}

/// A q0 node can still be relevant if one of its children is in a
/// non-skippable different state — recompute the lemma edge case directly.
fn relevant_by_lemma_edge(run: &bottomup::BuRun, ix: &TreeIndex, v: NodeId) -> bool {
    let q = run.states[v as usize];
    let fc = ix.first_child(v);
    let ns = ix.next_sibling(v);
    let s1 = if fc == xwq_index::NONE {
        0
    } else {
        run.states[fc as usize]
    };
    let s2 = if ns == xwq_index::NONE {
        0
    } else {
        run.states[ns as usize]
    };
    // Skippable partner states for A_{//a[.//b]}: q0 only (no universal).
    !((q == s1 && s2 == 0) || (q == s2 && s1 == 0) || (q == s1 && q == s2))
}
