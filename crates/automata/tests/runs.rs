//! Run semantics on concrete documents: Example 2.1, Example B.1 (Fig. 6),
//! and agreement between the evaluation styles.

use xwq_automata::{bottomup, examples, topdown};
use xwq_index::{NodeId, TreeIndex};
use xwq_xml::parse_seeded;

/// Parse with the canonical {a,b,c} label ids of `examples::abc_alphabet`.
fn index(xml: &str) -> TreeIndex {
    TreeIndex::build(&parse_seeded(xml, &["a", "b", "c"]).unwrap())
}

/// Naive XPath-semantics oracle for `//a//b`.
fn oracle_a_desc_b(ix: &TreeIndex) -> Vec<NodeId> {
    (0..ix.len() as NodeId)
        .filter(|&v| {
            if ix.name(v) != "b" {
                return false;
            }
            let mut p = ix.parent(v);
            while p != xwq_index::NONE {
                if ix.name(p) == "a" {
                    return true;
                }
                p = ix.parent(p);
            }
            false
        })
        .collect()
}

/// Naive oracle for `//a[.//b]`.
fn oracle_a_with_b(ix: &TreeIndex) -> Vec<NodeId> {
    (0..ix.len() as NodeId)
        .filter(|&v| ix.name(v) == "a" && (v + 1..ix.subtree_end(v)).any(|d| ix.name(d) == "b"))
        .collect()
}

const DOCS: &[&str] = &[
    "<a/>",
    "<b/>",
    "<a><b/></a>",
    "<b><a/></b>",
    "<c><a><c><b/><b><b/></b></c></a><b/><a><b/></a></c>",
    "<a><a><b/></a><c><b/></c></a>",
    "<c><c><c/></c></c>",
    "<b><b><b/></b></b>",
    "<a><c/><c><a/><b/></c><b><a><b/></a></b></a>",
];

#[test]
fn topdown_run_selects_per_xpath_semantics() {
    let (a, _) = examples::a_descendant_b();
    for doc in DOCS {
        let ix = index(doc);
        let run = topdown::run_topdown(&a, &ix).expect("TDSTA");
        assert!(run.accepting, "A_//a//b accepts all trees: {doc}");
        let sel = topdown::selected_of_run(&a, &run, &ix);
        assert_eq!(sel, oracle_a_desc_b(&ix), "doc {doc}");
    }
}

#[test]
fn bottomup_run_selects_per_xpath_semantics() {
    let (a, _) = examples::a_with_b_descendant();
    for doc in DOCS {
        let ix = index(doc);
        let run = bottomup::run_bottomup(&a, &ix).expect("BDSTA");
        assert!(run.accepting, "A_//a[.//b] accepts all trees: {doc}");
        let sel = bottomup::selected_of_run(&a, &run, &ix);
        assert_eq!(sel, oracle_a_with_b(&ix), "doc {doc}");
    }
}

#[test]
fn shift_reduce_matches_reverse_preorder_loop() {
    let (a, _) = examples::a_with_b_descendant();
    for doc in DOCS {
        let ix = index(doc);
        let loop_run = bottomup::run_bottomup(&a, &ix).unwrap();
        let sr_run = bottomup::bottomup_shift_reduce(&a, &ix).unwrap();
        assert_eq!(loop_run.states, sr_run.states, "doc {doc}");
        assert_eq!(loop_run.accepting, sr_run.accepting);
    }
}

#[test]
fn dtd_recognizer_accepts_only_a_roots() {
    let (mut dtd, _) = examples::dtd_root_a();
    dtd.complete_topdown();
    for doc in DOCS {
        let ix = index(doc);
        let run = topdown::run_topdown(&dtd, &ix).unwrap();
        assert_eq!(run.accepting, doc.starts_with("<a"), "doc {doc}");
    }
}

#[test]
fn figure6_style_run_tracks_b_locations() {
    // States of A_//a[.//b]: q0 = no b in (binary) subtree, q1 = b below the
    // left child (selecting on a), q2 = b in the subtree but not below-left.
    let (a, _) = examples::a_with_b_descendant();
    let ix = index("<a><c/><a><b/></a></a>");
    let run = bottomup::run_bottomup(&a, &ix).unwrap();
    // Nodes: a=0, c=1, a=2, b=3.
    assert_eq!(run.states[3], 2, "the b node itself");
    assert_eq!(run.states[2], 1, "a with b as descendant");
    assert_eq!(run.states[1], 2, "c: b under the following sibling");
    assert_eq!(run.states[0], 1, "root a: b among descendants");
    let sel = bottomup::selected_of_run(&a, &run, &ix);
    assert_eq!(sel, vec![0, 2]);
}
