//! Property test: histogram percentiles are within one log₂ bucket of the
//! exact sorted-order percentile at the same rank.

use proptest::prelude::*;
use xwq_obs::LatencyHisto;

/// Bit length of a sample — the histogram's bucket index.
fn bucket_of(ns: u64) -> u32 {
    64 - ns.leading_zeros()
}

/// Exact nearest-rank percentile over a sorted sample set.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn percentiles_within_one_log2_bucket(
        samples in prop::collection::vec(0u64..5_000_000_000, 1..400),
    ) {
        let h = LatencyHisto::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *sorted.last().unwrap());

        for q in [0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let reported = h.percentile(q).unwrap();
            // Same log₂ bucket: the histogram cannot distinguish values
            // within a bucket, but must never be off by a whole bucket.
            prop_assert_eq!(
                bucket_of(reported),
                bucket_of(exact),
                "q={} exact={} reported={}",
                q,
                exact,
                reported
            );
            // And never above the recorded maximum.
            prop_assert!(reported <= h.max());
        }
    }

    #[test]
    fn summary_matches_individual_percentiles(
        samples in prop::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let h = LatencyHisto::new();
        for &s in &samples {
            h.record(s);
        }
        let s = h.summary().unwrap();
        prop_assert_eq!(Some(s.p50), h.percentile(0.50));
        prop_assert_eq!(Some(s.p90), h.percentile(0.90));
        prop_assert_eq!(Some(s.p99), h.percentile(0.99));
        prop_assert_eq!(Some(s.p999), h.percentile(0.999));
        prop_assert_eq!(s.max, h.max());
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }
}
