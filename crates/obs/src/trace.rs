//! Structured per-query trace spans.
//!
//! A [`TraceNode`] is one timed operation in a query's execution — a plan op,
//! a phase, a whole query — with counter attributes (visits, jumps, memo
//! hits, estimated-vs-actual) and child spans. The executor builds the tree;
//! the CLI renders it.
//!
//! Wall-clock nanoseconds are carried on every node but only rendered when
//! `show_ns` is requested: the default text rendering is **deterministic** —
//! byte-identical across repeated warm runs of the same query on the same
//! index — so it can be asserted on in tests and diffed across runs.

/// One span in a query trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Operation name (matches the plan op shown by `explain`, e.g.
    /// `LabelJump`, `SpineDescend`, `Intersect`, `AutomatonRun`).
    pub name: String,
    /// Human-readable operand detail, e.g. the label or predicate tested.
    pub detail: String,
    /// Wall-clock time spent in this span (includes children).
    pub ns: u64,
    /// Counter attributes in insertion order, e.g. `("visited", "12")`.
    pub attrs: Vec<(String, String)>,
    /// Child spans in execution order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    pub fn new(name: impl Into<String>, detail: impl Into<String>) -> Self {
        TraceNode {
            name: name.into(),
            detail: detail.into(),
            ns: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Append a counter attribute.
    pub fn attr(&mut self, key: impl Into<String>, value: impl ToString) {
        self.attrs.push((key.into(), value.to_string()));
    }

    /// Append a child span and return a mutable handle to it.
    pub fn child(&mut self, node: TraceNode) -> &mut TraceNode {
        self.children.push(node);
        self.children.last_mut().expect("just pushed")
    }

    /// Total number of spans in the tree (including this node).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::span_count)
            .sum::<usize>()
    }

    /// Render the tree as indented text.
    ///
    /// With `show_ns = false` the output contains no wall-clock values and is
    /// deterministic for a warm run; with `show_ns = true` each line gains a
    /// trailing `ns=` field.
    pub fn render_text(&self, show_ns: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, show_ns);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, show_ns: bool) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if !self.detail.is_empty() {
            out.push(' ');
            out.push_str(&self.detail);
        }
        for (k, v) in &self.attrs {
            out.push_str("  ");
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        if show_ns {
            out.push_str("  ns=");
            out.push_str(&self.ns.to_string());
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1, show_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceNode {
        let mut root = TraceNode::new("Query", "//item[@id]");
        root.ns = 5_000;
        root.attr("visited", 42);
        root.attr("jumps", 3);
        let step = root.child(TraceNode::new("LabelJump", "item"));
        step.ns = 3_000;
        step.attr("candidates", 7);
        root.child(TraceNode::new("PredicateProbe", "@id"));
        root
    }

    #[test]
    fn deterministic_render_hides_timing() {
        let text = sample().render_text(false);
        assert_eq!(
            text,
            "Query //item[@id]  visited=42  jumps=3\n  LabelJump item  candidates=7\n  PredicateProbe @id\n"
        );
        assert!(!text.contains("ns="));
    }

    #[test]
    fn timed_render_appends_ns() {
        let text = sample().render_text(true);
        assert!(text.contains("ns=5000"));
        assert!(text.contains("ns=3000"));
    }

    #[test]
    fn span_count_walks_tree() {
        assert_eq!(sample().span_count(), 3);
    }
}
