//! HTTP serving metrics: the request/connection instruments `xwq serve`
//! reports through the shared [`Registry`].
//!
//! The serving tier resolves one [`HttpMetrics`] at startup; the handler
//! path then touches only `Arc`'d atomics — per-status counters are
//! pre-registered for the status codes the server can actually emit, so a
//! request's accounting is an inc + a histogram record, with no registry
//! lock.

use crate::{Counter, Gauge, LatencyHisto, Registry};
use std::sync::Arc;

/// Status codes pre-registered as `xwq_http_requests_total{status="..."}`
/// label values — every status the serve handler can produce. A status
/// outside this set (impossible today) is folded into `"500"` rather than
/// silently dropped.
const STATUSES: &[u16] = &[200, 400, 404, 405, 408, 413, 500, 503];

/// The serve tier's instruments, resolved once from a [`Registry`].
pub struct HttpMetrics {
    /// `xwq_http_requests_total{status}` — completed responses by status.
    requests: Vec<(u16, Arc<Counter>)>,
    /// `xwq_http_request_latency_ns` — read-first-byte → response-flushed.
    pub latency: Arc<LatencyHisto>,
    /// `xwq_http_connections_active` — connections currently open.
    pub connections: Arc<Gauge>,
}

impl HttpMetrics {
    /// Registers (or re-resolves) the HTTP metrics on `registry`.
    pub fn new(registry: &Registry) -> Self {
        registry.describe(
            "xwq_http_requests_total",
            "HTTP responses sent, by status code",
        );
        registry.describe(
            "xwq_http_request_latency_ns",
            "HTTP request service time (first request byte to response flushed), nanoseconds",
        );
        registry.describe(
            "xwq_http_connections_active",
            "HTTP connections currently open",
        );
        HttpMetrics {
            requests: STATUSES
                .iter()
                .map(|&s| {
                    let label = s.to_string();
                    (
                        s,
                        registry.counter_with("xwq_http_requests_total", &[("status", &label)]),
                    )
                })
                .collect(),
            latency: registry.histo("xwq_http_request_latency_ns"),
            connections: registry.gauge("xwq_http_connections_active"),
        }
    }

    /// Accounts one completed response: the status counter plus the
    /// service-time histogram.
    pub fn record_response(&self, status: u16, latency_ns: u64) {
        self.counter_for(status).inc();
        self.latency.record(latency_ns);
    }

    /// The `xwq_http_requests_total` counter for `status` (folding unknown
    /// statuses into 500, see [`STATUSES`]).
    pub fn counter_for(&self, status: u16) -> &Arc<Counter> {
        self.requests
            .iter()
            .find(|(s, _)| *s == status)
            .or_else(|| self.requests.iter().find(|(s, _)| *s == 500))
            .map(|(_, c)| c)
            .expect("500 is always registered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RenderFormat;

    #[test]
    fn records_and_renders() {
        let registry = Registry::new();
        let m = HttpMetrics::new(&registry);
        m.connections.add(1);
        m.record_response(200, 1_500);
        m.record_response(200, 2_500);
        m.record_response(503, 900);
        m.record_response(799, 10); // unknown → folded into 500
        m.connections.add(-1);
        let text = registry.render(RenderFormat::Prometheus);
        assert!(text.contains("xwq_http_requests_total{status=\"200\"} 2"));
        assert!(text.contains("xwq_http_requests_total{status=\"503\"} 1"));
        assert!(text.contains("xwq_http_requests_total{status=\"500\"} 1"));
        assert!(text.contains("xwq_http_connections_active 0"));
        assert!(text.contains("xwq_http_request_latency_ns_count 4"));
        // Zero-valued statuses are pre-registered so dashboards see the
        // full label space from the first scrape.
        assert!(text.contains("xwq_http_requests_total{status=\"400\"} 0"));
    }
}
