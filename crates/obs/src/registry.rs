//! Metric registry: named counters, gauges, and latency histograms with
//! Prometheus-text and JSON exposition.
//!
//! Registration hands back `Arc` handles; the registry mutex is touched only
//! at registration and render time, never on the record path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histo::{bucket_upper, LatencyHisto, HISTO_BUCKETS};

/// Monotonic counter.
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            v: AtomicI64::new(0),
        }
    }

    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricType {
    Counter,
    Gauge,
    Histogram,
}

impl MetricType {
    fn as_str(self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histo(Arc<LatencyHisto>),
}

impl Metric {
    fn ty(&self) -> MetricType {
        match self {
            Metric::Counter(_) => MetricType::Counter,
            Metric::Gauge(_) => MetricType::Gauge,
            Metric::Histo(_) => MetricType::Histogram,
        }
    }
}

/// A metric series is identified by its name plus its sorted label set.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<MetricId, Metric>,
    help: BTreeMap<String, String>,
}

/// Exposition format for [`Registry::render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderFormat {
    /// Prometheus text exposition (`# TYPE`, `# HELP`, cumulative `le` buckets).
    Prometheus,
    /// A JSON array of metric objects (histograms carry extracted percentiles).
    Json,
}

/// Registry of named metrics. Cheap to share behind an `Arc`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label(name: &str) -> bool {
    !name.is_empty()
        && name != "le"
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn label_vec(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| {
            assert!(valid_label(k), "invalid metric label name: {k:?}");
            (k.to_string(), val.to_string())
        })
        .collect();
    v.sort();
    v
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Attach a `# HELP` line to a metric name.
    pub fn describe(&self, name: &str, help: &str) {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut inner = self.inner.lock().unwrap();
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Register (or fetch) a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let id = MetricId {
            name: name.to_string(),
            labels: label_vec(labels),
        };
        let mut inner = self.inner.lock().unwrap();
        check_type(&inner, name, MetricType::Counter);
        match inner
            .metrics
            .entry(id)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => unreachable!("type checked above"),
        }
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Register (or fetch) a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let id = MetricId {
            name: name.to_string(),
            labels: label_vec(labels),
        };
        let mut inner = self.inner.lock().unwrap();
        check_type(&inner, name, MetricType::Gauge);
        match inner
            .metrics
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => unreachable!("type checked above"),
        }
    }

    /// Register (or fetch) an unlabelled latency histogram.
    pub fn histo(&self, name: &str) -> Arc<LatencyHisto> {
        self.histo_with(name, &[])
    }

    /// Register (or fetch) a latency histogram with labels.
    pub fn histo_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHisto> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let id = MetricId {
            name: name.to_string(),
            labels: label_vec(labels),
        };
        let mut inner = self.inner.lock().unwrap();
        check_type(&inner, name, MetricType::Histogram);
        match inner
            .metrics
            .entry(id)
            .or_insert_with(|| Metric::Histo(Arc::new(LatencyHisto::new())))
        {
            Metric::Histo(h) => Arc::clone(h),
            _ => unreachable!("type checked above"),
        }
    }

    /// Render a snapshot of every registered metric.
    pub fn render(&self, format: RenderFormat) -> String {
        let inner = self.inner.lock().unwrap();
        match format {
            RenderFormat::Prometheus => render_prometheus(&inner),
            RenderFormat::Json => render_json(&inner),
        }
    }
}

fn check_type(inner: &Inner, name: &str, want: MetricType) {
    if let Some((_, existing)) = inner.metrics.iter().find(|(id, _)| id.name == name) {
        assert!(
            existing.ty() == want,
            "metric {name:?} already registered as {}, requested {}",
            existing.ty().as_str(),
            want.as_str()
        );
    }
}

fn render_prometheus(inner: &Inner) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for (id, metric) in &inner.metrics {
        if last_name != Some(id.name.as_str()) {
            if let Some(help) = inner.help.get(&id.name) {
                out.push_str(&format!("# HELP {} {}\n", id.name, help.replace('\n', " ")));
            }
            out.push_str(&format!("# TYPE {} {}\n", id.name, metric.ty().as_str()));
            last_name = Some(id.name.as_str());
        }
        let labels = render_labels(&id.labels, None);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("{}{} {}\n", id.name, labels, c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{}{} {}\n", id.name, labels, g.get()));
            }
            Metric::Histo(h) => {
                let counts = h.bucket_counts();
                let mut cum = 0u64;
                for (i, &c) in counts.iter().enumerate().take(HISTO_BUCKETS - 1) {
                    cum += c;
                    if c > 0 && i < 64 {
                        let le =
                            render_labels(&id.labels, Some(("le", &bucket_upper(i).to_string())));
                        out.push_str(&format!("{}_bucket{} {}\n", id.name, le, cum));
                    }
                }
                let inf = render_labels(&id.labels, Some(("le", "+Inf")));
                out.push_str(&format!("{}_bucket{} {}\n", id.name, inf, h.count()));
                out.push_str(&format!("{}_sum{} {}\n", id.name, labels, h.sum()));
                out.push_str(&format!("{}_count{} {}\n", id.name, labels, h.count()));
            }
        }
    }
    out
}

fn render_json(inner: &Inner) -> String {
    let mut entries = Vec::new();
    for (id, metric) in &inner.metrics {
        let mut obj = String::from("{");
        obj.push_str(&format!("\"name\":\"{}\"", json_escape(&id.name)));
        obj.push_str(&format!(",\"type\":\"{}\"", metric.ty().as_str()));
        if !id.labels.is_empty() {
            let labels: Vec<String> = id
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect();
            obj.push_str(&format!(",\"labels\":{{{}}}", labels.join(",")));
        }
        if let Some(help) = inner.help.get(&id.name) {
            obj.push_str(&format!(",\"help\":\"{}\"", json_escape(help)));
        }
        match metric {
            Metric::Counter(c) => obj.push_str(&format!(",\"value\":{}", c.get())),
            Metric::Gauge(g) => obj.push_str(&format!(",\"value\":{}", g.get())),
            Metric::Histo(h) => {
                obj.push_str(&format!(",\"count\":{},\"sum\":{}", h.count(), h.sum()));
                if let Some(s) = h.summary() {
                    obj.push_str(&format!(
                        ",\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}",
                        s.p50, s.p90, s.p99, s.p999, s.max
                    ));
                }
            }
        }
        obj.push('}');
        entries.push(obj);
    }
    format!("[{}]\n", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("xwq_test_total");
        let b = r.counter("xwq_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("xwq_hits_total", &[("shard", "0")]);
        let b = r.counter_with("xwq_hits_total", &[("shard", "1")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter_with("m_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("m_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("xwq_conflict");
        let _ = r.gauge("xwq_conflict");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = Registry::new();
        let _ = r.counter("9starts-with-digit");
    }

    #[test]
    fn prometheus_render_shape() {
        let r = Registry::new();
        r.describe("xwq_queries_total", "Total queries served");
        r.counter("xwq_queries_total").add(7);
        r.gauge_with("xwq_cache_entries", &[("layer", "store")])
            .set(3);
        let h = r.histo("xwq_query_latency_ns");
        h.record(100);
        h.record(100_000);
        let text = r.render(RenderFormat::Prometheus);
        assert!(text.contains("# HELP xwq_queries_total Total queries served\n"));
        assert!(text.contains("# TYPE xwq_queries_total counter\n"));
        assert!(text.contains("xwq_queries_total 7\n"));
        assert!(text.contains("xwq_cache_entries{layer=\"store\"} 3\n"));
        assert!(text.contains("# TYPE xwq_query_latency_ns histogram\n"));
        assert!(text.contains("xwq_query_latency_ns_bucket{le=\"127\"} 1\n"));
        assert!(text.contains("xwq_query_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("xwq_query_latency_ns_sum 100100\n"));
        assert!(text.contains("xwq_query_latency_ns_count 2\n"));
    }

    #[test]
    fn json_render_shape() {
        let r = Registry::new();
        r.counter("xwq_total").add(5);
        let h = r.histo_with("xwq_lat_ns", &[("shard", "2")]);
        h.record(1000);
        let json = r.render(RenderFormat::Json);
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"xwq_total\""));
        assert!(json.contains("\"value\":5"));
        assert!(json.contains("\"labels\":{\"shard\":\"2\"}"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":1000"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("m_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.render(RenderFormat::Prometheus);
        assert!(text.contains("m_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
