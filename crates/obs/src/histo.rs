//! Fixed-bucket log₂-scale latency histogram.
//!
//! Values (nanoseconds) land in bucket `bit_length(v)`: bucket 0 holds the
//! value 0, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`. 65 buckets cover the
//! full `u64` range, so `record` never clamps and never allocates — the hot
//! path is four relaxed atomic ops.
//!
//! Percentile extraction walks the cumulative bucket counts and reports the
//! bucket's inclusive upper bound, clamped to the recorded maximum. The
//! reported value therefore always falls in the *same* log₂ bucket as the
//! exact sorted-order percentile at the same rank (see the proptest in
//! `tests/histo_percentiles.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for the value 0, plus one per bit length 1..=64.
pub const HISTO_BUCKETS: usize = 65;

/// Lock-free log₂-bucket histogram of `u64` samples (nanoseconds).
pub struct LatencyHisto {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a sample: its bit length (0 for the value 0).
#[inline]
pub(crate) fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturating for the top bucket).
#[inline]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHisto {
    /// A standalone histogram (also constructible via [`crate::Registry::histo`]).
    pub fn new() -> Self {
        LatencyHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free: four relaxed atomic RMW ops.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTO_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Percentile `q` in `(0, 1]`, e.g. `0.99` for p99.
    ///
    /// Uses the nearest-rank definition: rank `max(1, ceil(q·n))`. Returns
    /// `None` when the histogram is empty. The reported value is the
    /// containing bucket's upper bound clamped to the recorded max, so it is
    /// within one log₂ bucket of the exact sorted-order percentile.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// The standard quartet: (p50, p90, p99, p99.9). `None` when empty.
    pub fn summary(&self) -> Option<HistoSummary> {
        if self.count() == 0 {
            return None;
        }
        Some(HistoSummary {
            p50: self.percentile(0.50).unwrap_or(0),
            p90: self.percentile(0.90).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
            p999: self.percentile(0.999).unwrap_or(0),
            max: self.max(),
            count: self.count(),
            sum: self.sum(),
        })
    }
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto::new()
    }
}

/// Extracted percentile summary of a [`LatencyHisto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoSummary {
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    pub count: u64,
    pub sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn empty_histo_has_no_percentiles() {
        let h = LatencyHisto::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert!(h.summary().is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHisto::new();
        h.record(1000);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            // Upper bound of bucket 10 is 1023, clamped to max 1000.
            assert_eq!(h.percentile(q), Some(1000));
        }
        assert_eq!(h.sum(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn percentiles_track_skewed_distribution() {
        let h = LatencyHisto::new();
        // 99 fast samples at ~100ns, one slow outlier at ~1ms.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.summary().unwrap();
        assert_eq!(bucket_of(s.p50), bucket_of(100));
        assert_eq!(bucket_of(s.p90), bucket_of(100));
        // p99 rank is 99 → still the fast bucket; p99.9 and max see the tail.
        assert_eq!(bucket_of(s.p99), bucket_of(100));
        assert_eq!(s.p999, 1_000_000);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = LatencyHisto::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0));
        assert_eq!(h.bucket_counts()[0], 2);
    }
}
