//! `xwq-obs` — the dependency-free telemetry layer.
//!
//! Every serving layer of the engine reports into one [`Registry`] of
//! named metrics:
//!
//! * [`Counter`] — a monotonic `u64` (cache hits, admission decisions);
//! * [`Gauge`] — a signed instantaneous value (entries resident, workers
//!   live);
//! * [`LatencyHisto`] — a fixed-bucket log₂-scale histogram with a
//!   **lock-free record path** (one atomic add per bucket + three more for
//!   count/sum/max) cheap enough to sit on the query hot path, and exact
//!   in-bucket p50/p90/p99/p99.9 + max extraction.
//!
//! Handles are `Arc`-shared: a serving layer resolves its metrics once at
//! construction and the per-query cost is a few relaxed atomic ops — the
//! registry lock is only taken at registration and render time.
//!
//! [`Registry::render`] exposes a snapshot in two formats — Prometheus
//! text exposition and JSON — so `xwq stats` (and a future `xwq serve
//! --stats` endpoint) are a render call.
//!
//! [`TraceNode`] (see [`trace`]) is the structured per-query span tree
//! behind `xwq query --trace`.

mod histo;
mod http;
mod registry;
mod trace;

pub use histo::{HistoSummary, LatencyHisto, HISTO_BUCKETS};
pub use http::HttpMetrics;
pub use registry::{Counter, Gauge, Registry, RenderFormat};
pub use trace::TraceNode;
