//! XPath abstract syntax.

use std::fmt;

/// Navigation axes of the fragment (Def. C.1), plus `self` which the
/// abbreviation `.` inside predicates desugars to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `self::` (only produced by the `.` abbreviation)
    SelfAxis,
    /// `following-sibling::`
    FollowingSibling,
    /// `attribute::` / `@`
    Attribute,
    /// `parent::` / `..` — backward; rewritten into the forward fragment
    /// by [`crate::rewrite_forward`] before compilation.
    Parent,
    /// `ancestor::` — backward; rewritten like [`Axis::Parent`].
    Ancestor,
}

impl Axis {
    /// The `axis::` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::SelfAxis => "self",
            Axis::FollowingSibling => "following-sibling",
            Axis::Attribute => "attribute",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
        }
    }

    /// True for the backward axes (`parent`, `ancestor`).
    pub fn is_backward(self) -> bool {
        matches!(self, Axis::Parent | Axis::Ancestor)
    }
}

impl Path {
    /// True if any step (including inside predicates) uses a backward axis.
    pub fn has_backward_axis(&self) -> bool {
        fn pred(p: &Pred) -> bool {
            match p {
                Pred::And(a, b) | Pred::Or(a, b) => pred(a) || pred(b),
                Pred::Not(a) => pred(a),
                Pred::Path(path) => path.has_backward_axis(),
                Pred::TextEq(_) | Pred::TextContains(_) => false,
            }
        }
        self.steps
            .iter()
            .any(|s| s.axis.is_backward() || s.preds.iter().any(pred))
    }
}

/// Node tests of the fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeTest {
    /// A tag (or attribute) name.
    Name(String),
    /// `*` — any element (or any attribute on the attribute axis).
    Star,
    /// `node()` — any node.
    AnyNode,
    /// `text()` — text nodes.
    Text,
}

/// One location step: axis, node test, and conjunction of predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more bracketed predicates (implicitly conjoined).
    pub preds: Vec<Pred>,
}

/// Predicate expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// `p and p`
    And(Box<Pred>, Box<Pred>),
    /// `p or p`
    Or(Box<Pred>, Box<Pred>),
    /// `not(p)`
    Not(Box<Pred>),
    /// An existential path (relative to the context node, or absolute).
    Path(Path),
    /// `text() = 'literal'` — the context node has a text child with
    /// exactly this content (the text predicates of SXSI / \[1\]).
    TextEq(String),
    /// `contains(text(), 'literal')` — a text child contains the substring.
    TextContains(String),
}

/// A location path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// True if the path starts at the (virtual) document node.
    pub absolute: bool,
    /// The steps, outermost first. Non-empty.
    pub steps: Vec<Step>,
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::", self.axis.name())?;
        match &self.test {
            NodeTest::Name(n) => write!(f, "{n}")?,
            NodeTest::Star => write!(f, "*")?,
            NodeTest::AnyNode => write!(f, "node()")?,
            NodeTest::Text => write!(f, "text()")?,
        }
        for p in &self.preds {
            write!(f, "[ {p} ]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "not({p})"),
            Pred::Path(p) => write!(f, "{p}"),
            Pred::TextEq(s) => write!(f, "text() = '{s}'"),
            Pred::TextContains(s) => write!(f, "contains(text(), '{s}')"),
        }
    }
}
