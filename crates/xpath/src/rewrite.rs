//! Rewriting backward axes into the forward fragment.
//!
//! The paper's prototype "implements backward axes by adding up-moves to
//! formulas of the ASTA which are rewritten into down moves on-the-fly"
//! (§6). We realize the same capability at the query level: a path with
//! `parent::` / `ancestor::` steps is rewritten into an equivalent
//! forward-only path when the structure allows it, before compilation.
//!
//! Supported shapes (applied left-to-right, so chains compose):
//!
//! * `α/x/parent::t[P]` where `x` arrived via `child`/`attribute` — the
//!   parent *is* the `α`-match: intersect the node tests and move `x` into
//!   a predicate: `α'[x]` with `P` appended;
//! * `//x[P']/parent::t[P]` (descendant step straight from the document
//!   node) — any `t` with an `x[P']` child: `//t[P][ x[P'] ]`;
//! * `//x[P']/ancestor::t[P]` — any `t` with an `x[P']` descendant:
//!   `//t[P][ .//x[P'] ]`.
//!
//! Anything else (e.g. `parent` after a mid-path `descendant` step, which
//! would need `descendant-or-self`) returns `None` and the caller reports
//! the query as outside the supported fragment. Backward axes inside
//! predicates are not rewritten.

use crate::ast::{Axis, NodeTest, Path, Pred, Step};

/// Rewrites a path with backward axes into the forward fragment.
///
/// Returns the input unchanged (cloned) if it is already forward-only,
/// the rewritten path if a supported shape applies, and `None` otherwise.
/// A rewrite may produce a node test with an empty name — an intentionally
/// unsatisfiable test (the query provably selects nothing, e.g.
/// `/x/parent::t`, whose parent is the document node).
pub fn rewrite_forward(path: &Path) -> Option<Path> {
    if !path.has_backward_axis() {
        return Some(path.clone());
    }
    if path
        .steps
        .iter()
        .any(|s| s.preds.iter().any(pred_has_backward))
    {
        return None; // backward axes inside predicates: unsupported
    }
    let mut out: Vec<Step> = Vec::new();
    for step in &path.steps {
        match step.axis {
            Axis::Parent => rewrite_parent(&mut out, step, path.absolute)?,
            Axis::Ancestor => rewrite_ancestor(&mut out, step, path.absolute)?,
            _ => out.push(step.clone()),
        }
    }
    if out.is_empty() {
        return None;
    }
    Some(Path {
        absolute: path.absolute,
        steps: out,
    })
}

fn pred_has_backward(p: &Pred) -> bool {
    match p {
        Pred::And(a, b) | Pred::Or(a, b) => pred_has_backward(a) || pred_has_backward(b),
        Pred::Not(a) => pred_has_backward(a),
        Pred::Path(path) => path.has_backward_axis(),
        Pred::TextEq(_) | Pred::TextContains(_) => false,
    }
}

/// An intentionally unsatisfiable step (empty result).
fn impossible(axis: Axis) -> Step {
    Step {
        axis,
        test: NodeTest::Name(String::new()),
        preds: Vec::new(),
    }
}

/// Intersection of two node tests; `None` if provably empty.
fn intersect_tests(a: &NodeTest, b: &NodeTest) -> Option<NodeTest> {
    match (a, b) {
        (NodeTest::AnyNode, t) | (t, NodeTest::AnyNode) => Some(t.clone()),
        (NodeTest::Star, NodeTest::Star) => Some(NodeTest::Star),
        (NodeTest::Star, NodeTest::Name(n)) | (NodeTest::Name(n), NodeTest::Star) => {
            Some(NodeTest::Name(n.clone()))
        }
        (NodeTest::Name(x), NodeTest::Name(y)) if x == y => Some(NodeTest::Name(x.clone())),
        (NodeTest::Text, NodeTest::Text) => Some(NodeTest::Text),
        _ => None,
    }
}

fn rewrite_parent(out: &mut Vec<Step>, step: &Step, absolute: bool) -> Option<()> {
    match out.pop() {
        None => return None, // `parent` as the first step
        Some(prev) => {
            let prev_first = out.is_empty();
            match prev.axis {
                Axis::Child | Axis::Attribute if prev_first && absolute => {
                    // Parent of the root element is the document node:
                    // no element can match.
                    out.push(impossible(Axis::Child));
                }
                Axis::Child | Axis::Attribute => {
                    // The parent is the previous context node.
                    let target = out.pop()?; // exists: prev was not first
                    let test = match intersect_tests(&target.test, &step.test) {
                        Some(t) => t,
                        None => {
                            out.push(impossible(target.axis));
                            return Some(());
                        }
                    };
                    let mut preds = target.preds;
                    preds.push(Pred::Path(Path {
                        absolute: false,
                        steps: vec![prev],
                    }));
                    preds.extend(step.preds.iter().cloned());
                    out.push(Step {
                        axis: target.axis,
                        test,
                        preds,
                    });
                }
                Axis::Descendant if prev_first && absolute => {
                    // //x/parent::t — any t with an x child.
                    let mut preds = vec![Pred::Path(Path {
                        absolute: false,
                        steps: vec![Step {
                            axis: Axis::Child,
                            test: prev.test,
                            preds: prev.preds,
                        }],
                    })];
                    preds.extend(step.preds.iter().cloned());
                    out.push(Step {
                        axis: Axis::Descendant,
                        test: step.test.clone(),
                        preds,
                    });
                }
                _ => return None, // mid-path descendant etc.: unsupported
            }
        }
    }
    Some(())
}

fn rewrite_ancestor(out: &mut Vec<Step>, step: &Step, absolute: bool) -> Option<()> {
    // Only `//x[P']/ancestor::t[P]` is supported.
    if out.len() != 1 || !absolute {
        return None;
    }
    let prev = out.pop()?;
    if prev.axis != Axis::Descendant {
        out.push(prev);
        return None;
    }
    let mut preds = vec![Pred::Path(Path {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Descendant,
            test: prev.test,
            preds: prev.preds,
        }],
    })];
    preds.extend(step.preds.iter().cloned());
    out.push(Step {
        axis: Axis::Descendant,
        test: step.test.clone(),
        preds,
    });
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xpath;

    fn rw(q: &str) -> Option<String> {
        rewrite_forward(&parse_xpath(q).unwrap()).map(|p| p.to_string())
    }

    #[test]
    fn forward_paths_pass_through() {
        let p = parse_xpath("//a/b[c]").unwrap();
        assert_eq!(rewrite_forward(&p), Some(p.clone()));
    }

    #[test]
    fn parent_after_child_merges_into_context() {
        // //a/b/parent::a == //a[b]
        let got = rw("//a/b/parent::a").unwrap();
        let want = parse_xpath("//a[ b ]").unwrap().to_string();
        assert_eq!(got, want);
        // Dotdot form.
        assert_eq!(
            rw("//a/b/..").unwrap(),
            parse_xpath("//a[ b ]").unwrap().to_string()
        );
    }

    #[test]
    fn parent_with_conflicting_test_is_unsatisfiable() {
        // //a/b/parent::c can never match; the rewrite keeps an empty-name
        // test that no label satisfies.
        let p = rewrite_forward(&parse_xpath("//a/b/parent::c").unwrap()).unwrap();
        assert!(matches!(&p.steps[0].test, NodeTest::Name(n) if n.is_empty()));
    }

    #[test]
    fn parent_of_descendant_head() {
        // //b[c]/parent::t == //t[ b[c] ]
        let got = rw("//b[ c ]/parent::t").unwrap();
        let want = parse_xpath("//t[ b[ c ] ]").unwrap().to_string();
        assert_eq!(got, want);
    }

    #[test]
    fn ancestor_of_descendant_head() {
        // //x/ancestor::t == //t[ .//x ] (the rewrite emits the descendant
        // step directly, without the redundant self:: head).
        let got = rw("//x/ancestor::t").unwrap();
        let want = parse_xpath("//t[ descendant::x ]").unwrap().to_string();
        assert_eq!(got, want);
    }

    #[test]
    fn parent_of_root_is_empty() {
        let p = rewrite_forward(&parse_xpath("/a/parent::t").unwrap()).unwrap();
        assert!(matches!(&p.steps[0].test, NodeTest::Name(n) if n.is_empty()));
    }

    #[test]
    fn chains_compose() {
        // //a/b/../c == //a[b]/c
        let got = rw("//a/b/../c").unwrap();
        let want = parse_xpath("//a[ b ]/c").unwrap().to_string();
        assert_eq!(got, want);
    }

    #[test]
    fn unsupported_shapes_are_refused() {
        assert_eq!(rw("//a//b/parent::t"), None, "mid-path descendant parent");
        assert_eq!(rw("//a/b/ancestor::t"), None, "ancestor after two steps");
        assert_eq!(rw("//a[ ../b ]"), None, "backward axis inside predicate");
    }

    #[test]
    fn parent_continues_with_forward_steps() {
        // //x/parent::t/y == //t[x]/y
        let got = rw("//x/parent::t/y").unwrap();
        let want = parse_xpath("//t[ x ]/y").unwrap().to_string();
        assert_eq!(got, want);
    }
}
