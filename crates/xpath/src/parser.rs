//! Recursive-descent parser for the fragment.

use crate::ast::{Axis, NodeTest, Path, Pred, Step};
use std::fmt;

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset in the query string.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

/// Parses an XPath expression of the paper's fragment.
pub fn parse_xpath(input: &str) -> Result<Path, XPathError> {
    let mut p = P {
        s: input.as_bytes(),
        pos: 0,
    };
    let path = p.path()?;
    p.ws();
    if p.pos != p.s.len() {
        return p.err("trailing input");
    }
    Ok(path)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn ws(&mut self) {
        while self
            .s
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, pat: &str) -> bool {
        if self.s[self.pos..].starts_with(pat.as_bytes()) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    /// Parses a full path. Handles leading `/` and `//`.
    fn path(&mut self) -> Result<Path, XPathError> {
        self.ws();
        let mut steps = Vec::new();
        let absolute;
        let mut next_axis; // axis implied by the last separator
        if self.eat("//") {
            absolute = true;
            next_axis = Axis::Descendant;
        } else if self.eat("/") {
            absolute = true;
            next_axis = Axis::Child;
        } else {
            absolute = false;
            next_axis = Axis::Child; // relative paths start with their own step
        }
        loop {
            let step = self.step(next_axis, steps.is_empty() && !absolute)?;
            steps.push(step);
            self.ws();
            if self.eat("//") {
                next_axis = Axis::Descendant;
            } else if self.eat("/") {
                next_axis = Axis::Child;
            } else {
                break;
            }
        }
        Ok(Path { absolute, steps })
    }

    /// Parses one step. `implied` is the axis implied by the preceding
    /// separator; `first_relative` marks the head of a relative path (where
    /// `.` and `.//` are meaningful and the implied axis is `child`).
    fn step(&mut self, implied: Axis, first_relative: bool) -> Result<Step, XPathError> {
        self.ws();
        // `..` — parent::node() abbreviation.
        if self.s[self.pos..].starts_with(b"..") {
            self.pos += 2;
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                preds: self.predicates()?,
            });
        }
        // `.` — self step (only as the head of a relative path, e.g. `.//x`).
        if self.peek() == Some(b'.') && !self.s[self.pos..].starts_with(b"..") {
            if !first_relative && implied != Axis::Child {
                return self.err("`.` only allowed at the start of a relative path");
            }
            self.pos += 1;
            if !first_relative {
                return self.err("`.` only allowed at the start of a relative path");
            }
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                preds: self.predicates()?,
            });
        }
        // `@name` abbreviation.
        if self.eat("@") {
            let test = self.node_test()?;
            return Ok(Step {
                axis: Axis::Attribute,
                test,
                preds: self.predicates()?,
            });
        }
        // Explicit `axis::` prefix?
        let axis = self.explicit_axis()?.unwrap_or(implied);
        let test = self.node_test()?;
        Ok(Step {
            axis,
            test,
            preds: self.predicates()?,
        })
    }

    fn explicit_axis(&mut self) -> Result<Option<Axis>, XPathError> {
        for (name, axis) in [
            ("descendant::", Axis::Descendant),
            ("child::", Axis::Child),
            ("following-sibling::", Axis::FollowingSibling),
            ("attribute::", Axis::Attribute),
            ("self::", Axis::SelfAxis),
            ("parent::", Axis::Parent),
            ("ancestor::", Axis::Ancestor),
        ] {
            if self.eat(name) {
                return Ok(Some(axis));
            }
        }
        // A lone `foo::` with an unknown axis is an error, not a name.
        let rest = &self.s[self.pos..];
        if let Some(i) = rest.iter().position(|&c| !name_char(c)) {
            if rest[i..].starts_with(b"::") {
                return self.err("unknown axis");
            }
        }
        Ok(None)
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        self.ws();
        if self.eat("*") {
            return Ok(NodeTest::Star);
        }
        let name = self.name()?;
        self.ws();
        if self.eat("()") {
            return match name.as_str() {
                "node" => Ok(NodeTest::AnyNode),
                "text" => Ok(NodeTest::Text),
                _ => self.err(format!("unknown node test `{name}()`")),
            };
        }
        Ok(NodeTest::Name(name))
    }

    fn name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        while self.peek().is_some_and(name_char) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn predicates(&mut self) -> Result<Vec<Pred>, XPathError> {
        let mut out = Vec::new();
        loop {
            self.ws();
            if !self.eat("[") {
                return Ok(out);
            }
            let p = self.pred_or()?;
            self.ws();
            if !self.eat("]") {
                return self.err("expected `]`");
            }
            out.push(p);
        }
    }

    /// `or` has lowest precedence, then `and`, then atoms.
    fn pred_or(&mut self) -> Result<Pred, XPathError> {
        let mut left = self.pred_and()?;
        loop {
            self.ws();
            if self.keyword("or") {
                let right = self.pred_and()?;
                left = Pred::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn pred_and(&mut self) -> Result<Pred, XPathError> {
        let mut left = self.pred_atom()?;
        loop {
            self.ws();
            if self.keyword("and") {
                let right = self.pred_atom()?;
                left = Pred::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// Matches a keyword followed by a non-name character.
    fn keyword(&mut self, kw: &str) -> bool {
        let end = self.pos + kw.len();
        if self.s[self.pos..].starts_with(kw.as_bytes())
            && !self.s.get(end).copied().is_some_and(name_char)
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn pred_atom(&mut self) -> Result<Pred, XPathError> {
        self.ws();
        // `contains(text(), 'lit')`.
        if self.keyword("contains") {
            self.ws();
            if !self.eat("(") {
                return self.err("expected `(` after contains");
            }
            self.ws();
            if !self.eat("text()") {
                return self.err("contains() supports text() as first argument");
            }
            self.ws();
            if !self.eat(",") {
                return self.err("expected `,`");
            }
            let lit = self.string_literal()?;
            self.ws();
            if !self.eat(")") {
                return self.err("expected `)`");
            }
            return Ok(Pred::TextContains(lit));
        }
        // `text() = 'lit'` (plain `text()` existence is a Path atom).
        if self.s[self.pos..].starts_with(b"text()") {
            let save = self.pos;
            self.pos += "text()".len();
            self.ws();
            if self.eat("=") {
                let lit = self.string_literal()?;
                return Ok(Pred::TextEq(lit));
            }
            self.pos = save; // fall through to the path atom
        }
        if self.keyword("not") {
            self.ws();
            if !self.eat("(") {
                return self.err("expected `(` after not");
            }
            let inner = self.pred_or()?;
            self.ws();
            if !self.eat(")") {
                return self.err("expected `)`");
            }
            return Ok(Pred::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let inner = self.pred_or()?;
            self.ws();
            if !self.eat(")") {
                return self.err("expected `)`");
            }
            return Ok(inner);
        }
        Ok(Pred::Path(self.path()?))
    }
}

impl<'a> P<'a> {
    /// A single- or double-quoted string literal.
    fn string_literal(&mut self) -> Result<String, XPathError> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'\'' | b'"')) => q,
            _ => return self.err("expected a quoted string literal"),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some_and(|c| c != quote) {
            self.pos += 1;
        }
        if self.peek().is_none() {
            return self.err("unterminated string literal");
        }
        let out = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(out)
    }
}

fn name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        parse_xpath(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn absolute_child_steps() {
        let q = p("/site/regions");
        assert!(q.absolute);
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].axis, Axis::Child);
        assert_eq!(q.steps[0].test, NodeTest::Name("site".into()));
        assert_eq!(q.steps[1].test, NodeTest::Name("regions".into()));
    }

    #[test]
    fn descendant_abbreviation() {
        let q = p("//listitem//keyword");
        assert!(q.absolute);
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        assert_eq!(q.steps[1].axis, Axis::Descendant);
    }

    #[test]
    fn star_and_mixed_axes() {
        let q = p("/site/regions/*/item");
        assert_eq!(q.steps[2].test, NodeTest::Star);
        assert_eq!(q.steps[2].axis, Axis::Child);
    }

    #[test]
    fn explicit_axis_syntax() {
        let q = p("/site/descendant::keyword");
        assert_eq!(q.steps[1].axis, Axis::Descendant);
        let q = p("/a/following-sibling::b");
        assert_eq!(q.steps[1].axis, Axis::FollowingSibling);
        let q = p("/a/attribute::id");
        assert_eq!(q.steps[1].axis, Axis::Attribute);
    }

    #[test]
    fn attribute_abbreviation() {
        let q = p("//item/@id");
        assert_eq!(q.steps[1].axis, Axis::Attribute);
        assert_eq!(q.steps[1].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn predicates_with_boolean_structure() {
        let q = p("/site/people/person[ address and (phone or homepage) ]");
        let preds = &q.steps[2].preds;
        assert_eq!(preds.len(), 1);
        match &preds[0] {
            Pred::And(l, r) => {
                assert!(matches!(**l, Pred::Path(_)));
                assert!(matches!(**r, Pred::Or(_, _)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn dot_descendant_in_predicate() {
        let q = p("//listitem[ .//keyword and .//emph ]//parlist");
        let preds = &q.steps[0].preds;
        match &preds[0] {
            Pred::And(l, _) => match &**l {
                Pred::Path(path) => {
                    assert!(!path.absolute);
                    assert_eq!(path.steps[0].axis, Axis::SelfAxis);
                    assert_eq!(path.steps[1].axis, Axis::Descendant);
                    assert_eq!(path.steps[1].test, NodeTest::Name("keyword".into()));
                }
                other => panic!("expected Path, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn relative_path_predicate() {
        let q = p("/site/regions/*/item[ mailbox/mail/date ]/mailbox/mail");
        assert_eq!(q.steps.len(), 6);
        let preds = &q.steps[3].preds;
        match &preds[0] {
            Pred::Path(path) => {
                assert!(!path.absolute);
                assert_eq!(path.steps.len(), 3);
                assert_eq!(path.steps[0].axis, Axis::Child);
            }
            other => panic!("expected Path, got {other:?}"),
        }
    }

    #[test]
    fn not_and_nesting() {
        let q = p("//a[ not(b or not(c)) ]");
        match &q.steps[0].preds[0] {
            Pred::Not(inner) => assert!(matches!(**inner, Pred::Or(_, _))),
            other => panic!("expected Not, got {other:?}"),
        }
    }

    #[test]
    fn multiple_predicates_on_one_step() {
        let q = p("//a[b][c]");
        assert_eq!(q.steps[0].preds.len(), 2);
    }

    #[test]
    fn node_and_text_tests() {
        let q = p("//a/node()");
        assert_eq!(q.steps[1].test, NodeTest::AnyNode);
        let q = p("//a/text()");
        assert_eq!(q.steps[1].test, NodeTest::Text);
    }

    #[test]
    fn double_slash_inside_path() {
        let q = p("/site[ .//keyword//emph ]/descendant::keyword");
        match &q.steps[0].preds[0] {
            Pred::Path(path) => {
                assert_eq!(path.steps.len(), 3);
                assert_eq!(path.steps[2].axis, Axis::Descendant);
            }
            other => panic!("expected Path, got {other:?}"),
        }
        assert_eq!(q.steps[1].axis, Axis::Descendant);
    }

    #[test]
    fn errors() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("/").is_err());
        assert!(parse_xpath("//a[").is_err());
        assert!(parse_xpath("//a[b").is_err());
        assert!(parse_xpath("//a]").is_err());
        assert!(parse_xpath("//a[unknown()]").is_err());
        assert!(parse_xpath("/a/unknownaxis::b").is_err());
        assert!(parse_xpath("//a[not b]").is_err());
        assert!(parse_xpath("//a trailing").is_err());
    }

    #[test]
    fn display_round_trip() {
        for q in [
            "/site/regions",
            "//listitem//keyword",
            "/site/people/person[ address and (phone or homepage) ]",
            "//listitem[ .//keyword and .//emph ]//parlist",
            "/site[ .//keyword or .//keyword/emph ]//keyword",
            "//a[ not(b) ]/@id",
        ] {
            let ast1 = p(q);
            let printed = ast1.to_string();
            let ast2 = p(&printed);
            assert_eq!(ast1, ast2, "round-trip of {q} via {printed}");
        }
    }

    #[test]
    fn all_xpathmark_queries_parse() {
        // Q01–Q15 of Fig. 2.
        for q in [
            "/site/regions",
            "/site/regions/europe/item/mailbox/mail/text/keyword",
            "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem",
            "/site/regions/*/item",
            "//listitem//keyword",
            "/site/regions/*/item//keyword",
            "/site/people/person[ address and (phone or homepage) ]",
            "//listitem[ .//keyword and .//emph]//parlist",
            "/site/regions/*/item[ mailbox/mail/date ]/mailbox/mail",
            "/site[ .//keyword]",
            "/site//keyword",
            "/site[ .//keyword ]//keyword",
            "/site[ .//keyword or .//keyword/emph ]//keyword",
            "/site[ .//keyword//emph ]/descendant::keyword",
            "/site[ .//*//* ]//keyword",
        ] {
            p(q);
        }
    }
}
