//! Forward Core XPath: AST and parser (Def. C.1 of the paper).
//!
//! The fragment covers the paper's grammar — `descendant`, `child`,
//! `following-sibling` and `attribute` axes, node tests `tag | * | node() |
//! text()`, and predicates built from `and`, `or`, `not(…)` and nested
//! paths — plus the abbreviations the paper's own queries use (`//x`, `@x`,
//! `.//x`, leading `/`), which desugar into the fragment.
//!
//! Semantics convention: an absolute path is evaluated from a *virtual
//! document node* sitting above the root element, so `/site` matches the
//! root element when it is named `site`, and `//x` matches any `x`
//! including the root element. Both the automaton compiler (`xwq-core`) and
//! the step-wise baseline (`xwq-baseline`) follow this convention.

mod ast;
mod parser;
mod rewrite;

pub use ast::{Axis, NodeTest, Path, Pred, Step};
pub use parser::{parse_xpath, XPathError};
pub use rewrite::rewrite_forward;
