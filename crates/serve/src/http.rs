//! HTTP/1.1 on a socket, the minimal honest subset: request parsing with
//! hard size caps, `Content-Length` bodies, keep-alive, and fixed or
//! chunked responses. Anything outside the subset — stray transfer
//! encodings, HTTP/2 preambles, header floods — is rejected with a clean
//! 4xx, never a panic: every byte here arrived from the network.

use std::io::{self, BufRead, Write};

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with any `?query` suffix split off (the server routes on the
    /// path alone and ignores query strings).
    pub path: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True if the client asked to close the connection after this
    /// response (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Carries the status the connection
/// should answer with before closing (0 = no answer, just close).
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF on a request boundary — the client is done.
    Eof,
    /// Read timed out (between or inside requests) → 408.
    Timeout,
    /// Malformed request line / headers / framing → 400.
    Bad(&'static str),
    /// Header section or declared body over the configured cap → 413.
    TooLarge(&'static str),
    /// Transport failure mid-request; nothing sensible to answer.
    Io(io::Error),
}

impl ReadError {
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ReadError::Eof | ReadError::Io(_) => None,
            ReadError::Timeout => Some((408, "request read timed out")),
            ReadError::Bad(m) => Some((400, m)),
            ReadError::TooLarge(m) => Some((413, m)),
        }
    }
}

fn classify(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::Timeout,
        _ => ReadError::Io(e),
    }
}

/// Reads one line (through `\n`), enforcing a running header-byte budget.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    first: bool,
) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let n = {
            let buf = reader.fill_buf().map_err(classify)?;
            if buf.is_empty() {
                return Err(if first && line.is_empty() {
                    ReadError::Eof
                } else {
                    ReadError::Bad("connection closed mid-request")
                });
            }
            let take = buf
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| i + 1)
                .unwrap_or(buf.len());
            let take = take.min(*budget + 1);
            line.extend_from_slice(&buf[..take]);
            take
        };
        reader.consume(n);
        if n > *budget {
            return Err(ReadError::TooLarge("header section exceeds the cap"));
        }
        *budget -= n;
        if line.last() == Some(&b'\n') {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ReadError::Bad("non-UTF-8 header bytes"))
}

/// Reads one request off `reader`. `max_header` bounds the request line +
/// headers together; `max_body` bounds the declared `Content-Length`.
pub fn read_request(
    reader: &mut impl BufRead,
    max_header: usize,
    max_body: usize,
) -> Result<Request, ReadError> {
    let mut budget = max_header;
    let request_line = read_line(reader, &mut budget, true)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(ReadError::Bad("malformed request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Bad("unsupported HTTP version"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Bad("malformed method"));
    }
    let path = path.split('?').next().expect("split yields a first piece");

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget, false)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad("malformed header line"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Bad("request transfer-encoding not supported"));
    }
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Bad("malformed content-length"))?;
        if len > max_body {
            return Err(ReadError::TooLarge("request body exceeds the cap"));
        }
        let mut body = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = reader.read(&mut body[filled..]).map_err(classify)?;
            if n == 0 {
                return Err(ReadError::Bad("connection closed mid-body"));
            }
            filled += n;
        }
        req.body = body;
    }
    Ok(req)
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length response. `extra` headers are emitted
/// verbatim (already `Name: value` formatted, no terminators).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[&str],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for h in extra {
        write!(w, "{h}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Incremental chunked-transfer response: `begin` writes the header,
/// each `chunk` flushes one piece to the wire immediately (this is the
/// mechanism that puts the first document's bytes on the socket while
/// later shards are still evaluating), `finish` terminates the stream.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
    started: bool,
    done: bool,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    pub fn new(w: &'a mut W) -> Self {
        ChunkedWriter {
            w,
            started: false,
            done: false,
        }
    }

    pub fn started(&self) -> bool {
        self.started
    }

    pub fn begin(&mut self, status: u16, content_type: &str, keep_alive: bool) -> io::Result<()> {
        debug_assert!(!self.started);
        self.started = true;
        write!(
            self.w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            status,
            status_reason(status),
            content_type,
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        self.w.flush()
    }

    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        debug_assert!(self.started && !self.done);
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    pub fn finish(&mut self) -> io::Result<()> {
        debug_assert!(self.started && !self.done);
        self.done = true;
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes), 1024, 4096)
    }

    #[test]
    fn parses_request_with_body_and_keepalive() {
        let req =
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!((req.method.as_str(), req.path.as_str()), ("POST", "/query"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
        let req = parse(b"GET /healthz?x=1 HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(req.wants_close());
    }

    #[test]
    fn garbage_is_400_and_oversize_is_413() {
        for bad in [
            &b"\x16\x03\x01 TLS hello\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            match parse(bad) {
                Err(ReadError::Bad(_)) => {}
                other => panic!("{bad:?} → {other:?}"),
            }
        }
        let flood = format!("GET /x HTTP/1.1\r\nA: {}\r\n\r\n", "y".repeat(5000));
        assert!(matches!(
            parse(flood.as_bytes()),
            Err(ReadError::TooLarge(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(ReadError::TooLarge(_))
        ));
    }

    #[test]
    fn eof_before_any_byte_is_clean() {
        assert!(matches!(parse(b""), Err(ReadError::Eof)));
        assert!(matches!(
            parse(b"GET /x HT"),
            Err(ReadError::Bad(_)) // mid-request close is not clean
        ));
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_request(&mut r, 1024, 1024).unwrap().path, "/a");
        assert_eq!(read_request(&mut r, 1024, 1024).unwrap().path, "/b");
        assert!(matches!(
            read_request(&mut r, 1024, 1024),
            Err(ReadError::Eof)
        ));
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut cw = ChunkedWriter::new(&mut out);
        cw.begin(200, "text/plain", true).unwrap();
        cw.chunk(b"hello ").unwrap();
        cw.chunk(b"").unwrap(); // dropped, would otherwise end the stream
        cw.chunk(b"world").unwrap();
        cw.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"));
    }
}
