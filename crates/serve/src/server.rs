//! The HTTP server over a [`ShardedSession`]: a bounded accept queue in
//! front of a fixed worker pool (the same park/notify discipline as the
//! shard pools, one layer up), keep-alive pipelining, per-request
//! timeouts, and graceful drain — stop accepting, finish in-flight
//! requests, then join.
//!
//! Routes:
//!
//! * `POST /query` — evaluate an XPath query over the corpus. JSON body;
//!   structured JSON response, exact-CLI-bytes text response, or chunked
//!   streaming NDJSON where each document's row hits the wire as its
//!   shard finishes (the sharded session's incremental merge).
//! * `GET /metrics` — the registry in Prometheus text exposition.
//! * `GET /healthz` — liveness.
//!
//! Overload maps to HTTP: a full accept queue or an admission
//! [`CorpusError::Overloaded`] is `503` + `Retry-After`, read timeouts
//! are `408`, malformed input is `400`/`413` — never a panic and never a
//! wedged connection.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use xwq_core::{EvalStats, Strategy};
use xwq_obs::{HttpMetrics, Registry, RenderFormat};
use xwq_shard::{Corpus, CorpusError, DocOutcome, ShardedSession};
use xwq_xml::{Document, NodeId, NONE};

use crate::http::{self, ChunkedWriter, ReadError, Request};
use crate::json::{self, Json};

/// Tunables for [`Server::start`]. `Default` is sized for tests and
/// small deployments; the CLI exposes the knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Connection-handler threads (each owns one connection at a time).
    pub http_workers: usize,
    /// Accepted connections allowed to wait for a handler; one more is
    /// shed with `503`.
    pub max_queued: usize,
    /// Socket read timeout (idle keep-alive connections are closed with
    /// `408` after this long; also bounds drain time on shutdown).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Request-line + header cap (`413` beyond it).
    pub max_header_bytes: usize,
    /// Request body cap (`413` beyond it).
    pub max_body_bytes: usize,
    /// Accept the `hold_ms` request field, which stalls the evaluation
    /// while it holds its admission slot. A latency-injection hook for
    /// deterministic overload and drain tests — never enable it on a
    /// server exposed to anything you don't trust.
    pub allow_latency_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            http_workers: 4,
            max_queued: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1 << 20,
            allow_latency_injection: false,
        }
    }
}

struct Inner {
    session: Arc<ShardedSession>,
    registry: Arc<Registry>,
    metrics: HttpMetrics,
    cfg: ServeConfig,
    /// Set once by [`Server::shutdown`]: the acceptor exits, workers
    /// finish what they hold (queued connections included — they were
    /// accepted, so they are in flight) and stop renewing keep-alives.
    stopping: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// drains gracefully.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the acceptor + worker threads. HTTP metrics are registered
    /// on `registry`, which is also what `GET /metrics` renders.
    pub fn start(
        session: Arc<ShardedSession>,
        registry: Arc<Registry>,
        addr: &str,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            metrics: HttpMetrics::new(&registry),
            session,
            registry,
            cfg,
            stopping: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });
        let workers = (0..inner.cfg.http_workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("xwq-http-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn http worker")
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("xwq-http-accept".to_string())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn http acceptor")
        };
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting (new connects are refused once the
    /// listener closes), let workers finish every accepted connection,
    /// then join all threads. Idle keep-alive connections are cut after
    /// at most one read timeout.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        // The acceptor is parked in `accept`; a throwaway self-connect
        // wakes it so it can observe `stopping` and drop the listener.
        drop(TcpStream::connect(self.addr));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.drain();
        }
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.stopping.load(Ordering::SeqCst) {
            break; // listener drops here; further connects are refused
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
        let mut queue = inner.queue.lock().expect("http queue poisoned");
        if queue.len() >= inner.cfg.max_queued {
            drop(queue);
            shed(inner, stream);
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Queue-full shedding, done on the acceptor thread: one small write,
/// then close. The client sees `503` instead of an opaque hang.
fn shed(inner: &Inner, stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let body = b"{\"error\":\"server accept queue is full\"}\n";
    let _ = http::write_response(
        &mut w,
        503,
        "application/json",
        &["Retry-After: 1"],
        body,
        false,
    );
    inner.metrics.record_response(503, 0);
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().expect("http queue poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if inner.stopping.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("http queue poisoned");
            }
        };
        inner.metrics.connections.add(1);
        handle_connection(inner, stream);
        inner.metrics.connections.add(-1);
    }
}

/// Serves one connection: keep-alive request loop until the client
/// closes, errors, asks for `Connection: close`, or the server drains.
fn handle_connection(inner: &Inner, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match http::read_request(
            &mut reader,
            inner.cfg.max_header_bytes,
            inner.cfg.max_body_bytes,
        ) {
            Ok(req) => {
                let started = Instant::now();
                let keep_alive = !req.wants_close() && !inner.stopping.load(Ordering::SeqCst);
                match route(inner, &req, &mut writer, keep_alive, started) {
                    Ok(()) if keep_alive => continue,
                    _ => return,
                }
            }
            Err(e) => {
                if let Some((status, msg)) = e.status() {
                    let body = format!("{{\"error\":{}}}\n", json::escaped(msg));
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        false,
                    );
                    inner.metrics.record_response(status, 0);
                } else if matches!(e, ReadError::Io(_)) {
                    // Transport died mid-request; nothing to answer.
                }
                return;
            }
        }
    }
}

fn route(
    inner: &Inner,
    req: &Request,
    w: &mut BufWriter<TcpStream>,
    keep_alive: bool,
    started: Instant,
) -> io::Result<()> {
    let respond = |w: &mut BufWriter<TcpStream>,
                   status: u16,
                   content_type: &str,
                   extra: &[&str],
                   body: &[u8]|
     -> io::Result<()> {
        let r = http::write_response(w, status, content_type, extra, body, keep_alive);
        inner
            .metrics
            .record_response(status, started.elapsed().as_nanos() as u64);
        r
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(w, 200, "text/plain", &[], b"ok\n"),
        ("GET", "/metrics") => {
            let text = inner.registry.render(RenderFormat::Prometheus);
            respond(
                w,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                text.as_bytes(),
            )
        }
        ("POST", "/query") => handle_query(inner, req, w, keep_alive, started),
        (_, "/healthz" | "/metrics") => respond(
            w,
            405,
            "application/json",
            &["Allow: GET"],
            b"{\"error\":\"method not allowed\"}\n",
        ),
        (_, "/query") => respond(
            w,
            405,
            "application/json",
            &["Allow: POST"],
            b"{\"error\":\"method not allowed\"}\n",
        ),
        _ => respond(
            w,
            404,
            "application/json",
            &[],
            b"{\"error\":\"no such route\"}\n",
        ),
    }
}

/// A validated `POST /query` body.
struct QueryRequest {
    query: String,
    strategy: Strategy,
    docs: Option<Vec<String>>,
    count: bool,
    /// `"format": "text"` reproduces `xwq corpus query` stdout bytes.
    text: bool,
    stream: bool,
    hold_ms: u64,
}

fn parse_query_request(body: &[u8], allow_hold: bool) -> Result<QueryRequest, String> {
    let body = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = json::parse(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let Json::Obj(fields) = &v else {
        return Err("body must be a JSON object".to_string());
    };
    for key in fields.keys() {
        if !matches!(
            key.as_str(),
            "query" | "strategy" | "docs" | "count" | "format" | "stream" | "hold_ms"
        ) {
            return Err(format!("unknown field {key:?}"));
        }
    }
    let query = v
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string field \"query\"")?
        .to_string();
    // Reject syntactically bad XPath up front with the parser's message,
    // before the query touches the admission queue.
    xwq_xpath::parse_xpath(&query).map_err(|e| format!("bad query: {e}"))?;
    let strategy = match v.get("strategy") {
        None => Strategy::default(),
        Some(s) => s
            .as_str()
            .ok_or("\"strategy\" must be a string")?
            .parse::<Strategy>()
            .map_err(|e| e.to_string())?,
    };
    let docs = match v.get("docs") {
        None => None,
        Some(d) => {
            let arr = d.as_arr().ok_or("\"docs\" must be an array of strings")?;
            let names = arr
                .iter()
                .map(|n| n.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or("\"docs\" must be an array of strings")?;
            if names.is_empty() {
                return Err("\"docs\" must not be empty".to_string());
            }
            Some(names)
        }
    };
    let flag = |name: &str| -> Result<bool, String> {
        match v.get(name) {
            None => Ok(false),
            Some(b) => b.as_bool().ok_or(format!("{name:?} must be a boolean")),
        }
    };
    let text = match v.get("format") {
        None => false,
        Some(f) => match f.as_str() {
            Some("json") => false,
            Some("text") => true,
            _ => return Err("\"format\" must be \"json\" or \"text\"".to_string()),
        },
    };
    let hold_ms = match v.get("hold_ms") {
        None => 0,
        Some(h) => {
            if !allow_hold {
                return Err(
                    "\"hold_ms\" requires the server to run with --allow-latency-injection"
                        .to_string(),
                );
            }
            h.as_u64()
                .ok_or("\"hold_ms\" must be a non-negative integer")?
        }
    };
    let req = QueryRequest {
        query,
        strategy,
        docs,
        count: flag("count")?,
        text,
        stream: flag("stream")?,
        hold_ms,
    };
    if req.stream && req.text {
        return Err(
            "streaming responses are NDJSON; \"format\":\"text\" cannot stream".to_string(),
        );
    }
    Ok(req)
}

fn corpus_error_response(e: &CorpusError) -> (u16, &'static [&'static str], String) {
    match e {
        CorpusError::Overloaded { .. } => (503, &["Retry-After: 1"], format!("{e}")),
        CorpusError::UnknownDocument(_) => (400, &[], format!("{e}")),
        _ => (500, &[], format!("{e}")),
    }
}

fn handle_query(
    inner: &Inner,
    req: &Request,
    w: &mut BufWriter<TcpStream>,
    keep_alive: bool,
    started: Instant,
) -> io::Result<()> {
    let respond = |w: &mut BufWriter<TcpStream>,
                   status: u16,
                   content_type: &str,
                   extra: &[&str],
                   body: &[u8]|
     -> io::Result<()> {
        let r = http::write_response(w, status, content_type, extra, body, keep_alive);
        inner
            .metrics
            .record_response(status, started.elapsed().as_nanos() as u64);
        r
    };
    let q = match parse_query_request(&req.body, inner.cfg.allow_latency_injection) {
        Ok(q) => q,
        Err(msg) => {
            let body = format!("{{\"error\":{}}}\n", json::escaped(&msg));
            return respond(w, 400, "application/json", &[], body.as_bytes());
        }
    };
    let corpus = Arc::clone(inner.session.corpus());
    let hold = Duration::from_millis(q.hold_ms);
    // One evaluation entry point for every response mode: the streaming
    // fan-out with a per-document sink. `hold` sleeps *after* the emit,
    // inside the fan-out — the admission slot stays occupied, which is
    // what the overload and drain tests rely on.
    let run = |sink: &mut dyn FnMut(DocOutcome)| -> Result<EvalStats, CorpusError> {
        let mut wrapped = |o: DocOutcome| {
            sink(o);
            if !hold.is_zero() {
                thread::sleep(hold);
            }
        };
        match &q.docs {
            Some(docs) => {
                inner
                    .session
                    .query_docs_streaming(&q.query, q.strategy, docs, &mut wrapped)
            }
            None => inner
                .session
                .query_corpus_streaming(&q.query, q.strategy, &mut wrapped),
        }
    };

    if q.stream {
        let mut cw = ChunkedWriter::new(w);
        let mut io_err: Option<io::Error> = None;
        let mut failures = 0usize;
        let result = run(&mut |o| {
            if o.result.is_err() {
                failures += 1;
            }
            if io_err.is_some() {
                return;
            }
            if !cw.started() {
                if let Err(e) = cw.begin(200, "application/x-ndjson", keep_alive) {
                    io_err = Some(e);
                    return;
                }
            }
            let mut line = render_outcome_json(&corpus, &o, q.count);
            line.push('\n');
            if let Err(e) = cw.chunk(line.as_bytes()) {
                io_err = Some(e);
            }
        });
        if let Some(e) = io_err {
            inner
                .metrics
                .record_response(200, started.elapsed().as_nanos() as u64);
            return Err(e);
        }
        match result {
            Ok(stats) => {
                if !cw.started() {
                    cw.begin(200, "application/x-ndjson", keep_alive)?;
                }
                let mut tail = String::from("{\"stats\":");
                render_stats_json(&mut tail, &stats);
                tail.push_str(&format!(",\"failures\":{failures}"));
                tail.push_str(&format!(
                    ",\"elapsed_ns\":{}}}\n",
                    started.elapsed().as_nanos()
                ));
                cw.chunk(tail.as_bytes())?;
                let r = cw.finish();
                inner
                    .metrics
                    .record_response(200, started.elapsed().as_nanos() as u64);
                r
            }
            Err(e) => {
                let (status, extra, msg) = corpus_error_response(&e);
                if cw.started() {
                    // Errors surface before the first document under the
                    // current admission design; this arm is defensive.
                    let line = format!("{{\"error\":{}}}\n", json::escaped(&msg));
                    cw.chunk(line.as_bytes())?;
                    let r = cw.finish();
                    inner
                        .metrics
                        .record_response(200, started.elapsed().as_nanos() as u64);
                    r
                } else {
                    let body = format!("{{\"error\":{}}}\n", json::escaped(&msg));
                    respond(w, status, "application/json", extra, body.as_bytes())
                }
            }
        }
    } else {
        let mut outcomes = Vec::new();
        let stats = match run(&mut |o| outcomes.push(o)) {
            Ok(stats) => stats,
            Err(e) => {
                let (status, extra, msg) = corpus_error_response(&e);
                let body = format!("{{\"error\":{}}}\n", json::escaped(&msg));
                return respond(w, status, "application/json", extra, body.as_bytes());
            }
        };
        let failures = outcomes.iter().filter(|o| o.result.is_err()).count();
        if q.text {
            let mut body = String::new();
            for o in &outcomes {
                render_outcome_text(&mut body, &corpus, o, q.count);
            }
            let failures_header = format!("X-Xwq-Failures: {failures}");
            respond(
                w,
                200,
                "text/plain; charset=utf-8",
                &[&failures_header],
                body.as_bytes(),
            )
        } else {
            let mut body = String::from("{\"query\":");
            json::write_escaped(&mut body, &q.query);
            body.push_str(&format!(
                ",\"strategy\":\"{}\",\"results\":[",
                q.strategy.token()
            ));
            for (i, o) in outcomes.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&render_outcome_json(&corpus, o, q.count));
            }
            body.push_str(&format!("],\"failures\":{failures},\"stats\":"));
            render_stats_json(&mut body, &stats);
            body.push_str(&format!(
                ",\"elapsed_ns\":{}}}\n",
                started.elapsed().as_nanos()
            ));
            respond(w, 200, "application/json", &[], body.as_bytes())
        }
    }
}

/// One document's outcome as a JSON object (an NDJSON line in streaming
/// mode, a `results[]` element otherwise).
fn render_outcome_json(corpus: &Corpus, o: &DocOutcome, count_only: bool) -> String {
    let mut out = String::from("{\"doc\":");
    json::write_escaped(&mut out, &o.doc);
    out.push_str(&format!(",\"shard\":{}", o.shard));
    match &o.result {
        Ok(resp) => {
            out.push_str(&format!(
                ",\"count\":{},\"cache_hit\":{}",
                resp.nodes.len(),
                resp.cache_hit
            ));
            if !count_only {
                out.push_str(",\"nodes\":[");
                for (i, v) in resp.nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{v}"));
                }
                out.push_str("],\"paths\":[");
                // The document is present whenever its outcome is Ok; a
                // concurrent remove still serves this epoch's snapshot.
                let doc = corpus.get(&o.doc);
                for (i, &v) in resp.nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match &doc {
                        Some(d) => json::write_escaped(&mut out, &node_path(d.document(), v)),
                        None => out.push_str("null"),
                    }
                }
                out.push(']');
            }
        }
        Err(e) => {
            out.push_str(",\"error\":");
            json::write_escaped(&mut out, &format!("{e}"));
        }
    }
    out.push('}');
    out
}

/// `xwq corpus query` stdout bytes for one document — the format-string
/// twins of `cmd_corpus_query` (a CLI-parity test pins them together).
/// Failed documents print nothing, as on the CLI (stderr there).
fn render_outcome_text(out: &mut String, corpus: &Corpus, o: &DocOutcome, count_only: bool) {
    let Ok(resp) = &o.result else {
        return;
    };
    if count_only {
        out.push_str(&format!("{:>8}  {}\n", resp.nodes.len(), o.doc));
        return;
    }
    let Some(doc) = corpus.get(&o.doc) else {
        return;
    };
    for &v in &resp.nodes {
        out.push_str(&format!(
            "{:>8}  {}  {}\n",
            v,
            o.doc,
            node_path(doc.document(), v)
        ));
    }
}

fn render_stats_json(out: &mut String, s: &EvalStats) {
    out.push_str(&format!(
        "{{\"visited\":{},\"jumps\":{},\"memo_entries\":{},\"memo_hits\":{},\"memo_misses\":{},\"selected\":{}}}",
        s.visited, s.jumps, s.memo_entries, s.memo_hits, s.memo_misses, s.selected
    ));
}

/// `/site/regions[1]/item[3]`-style path (1-based positions among
/// same-named siblings) — mirrors the CLI's `node_path`.
fn node_path(doc: &Document, v: NodeId) -> String {
    let mut parts = Vec::new();
    let mut cur = v;
    while cur != NONE {
        let name = doc.name(cur);
        let parent = doc.parent(cur);
        let pos = if parent == NONE {
            1
        } else {
            doc.children(parent)
                .filter(|&c| doc.name(c) == name && c <= cur)
                .count()
        };
        parts.push(format!("{name}[{pos}]"));
        cur = parent;
    }
    parts.reverse();
    format!("/{}", parts.join("/"))
}
