//! `xwq-serve` — the network serving tier.
//!
//! A dependency-free (`std::net`) HTTP/1.1 server that exposes a
//! [`xwq_shard::ShardedSession`] — the sharded, admission-controlled
//! corpus — over three routes:
//!
//! * `POST /query`: XPath over the corpus. Structured JSON, exact
//!   CLI-stdout text, or **streaming** NDJSON over chunked transfer,
//!   where each document's row is written as its shard finishes — the
//!   first result reaches the client while the slowest shard is still
//!   evaluating (see `ShardedSession::query_corpus_streaming`).
//! * `GET /metrics`: the [`xwq_obs::Registry`] in Prometheus text
//!   exposition, including this crate's own request/connection metrics.
//! * `GET /healthz`: liveness.
//!
//! The connection model is the engine's pool discipline one layer up: a
//! bounded accept queue feeding a fixed worker pool, keep-alive
//! pipelining, per-request read/write timeouts, and overload that
//! degrades loudly (`503` + `Retry-After`, `408`, `413`) instead of
//! wedging. [`Server::shutdown`] drains gracefully: stop accepting,
//! finish everything accepted, join.
//!
//! [`loadgen`] is the matching open-loop, closed-socket load generator
//! (`xwq loadgen`), whose p50/p99/error-rate rows feed the `serve`
//! section of `BENCH_eval.json`.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod server;
pub mod signal;

pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{ServeConfig, Server};
