//! Open-loop, closed-socket load generator for `xwq serve`.
//!
//! Open-loop means the arrival schedule is fixed up front — request `i`
//! is *due* at `start + i/rate` whether or not earlier requests have
//! finished — and latency is measured **from the scheduled arrival
//! time**, not from when a worker got around to sending. A closed-loop
//! generator (send, wait, send) silently stops offering load the moment
//! the server slows down, which hides exactly the queueing behaviour a
//! latency percentile is supposed to expose (coordinated omission).
//!
//! Closed-socket: every request uses a fresh connection, so accept-queue
//! and connection-setup costs are inside the measurement, as they are
//! for a new client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// What to offer, where, for how long.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// `host:port` of a running `xwq serve`.
    pub addr: String,
    /// Offered arrival rate, requests per second.
    pub rate_hz: f64,
    /// Total requests in the schedule.
    pub requests: u64,
    /// JSON body sent as `POST /query` on every request.
    pub body: String,
    /// Sender threads. More than the server's worker count is fine —
    /// senders mostly sleep; short of it, a slow server makes *this*
    /// side the bottleneck and the report says so via `late`.
    pub senders: usize,
    /// Per-socket read/write timeout; a request past it counts as an
    /// error.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            rate_hz: 50.0,
            requests: 100,
            body: "{\"query\":\"//x\",\"count\":true}".to_string(),
            senders: 8,
            timeout: Duration::from_secs(10),
        }
    }
}

/// The aggregate outcome of one run. Latencies are nanoseconds from the
/// *scheduled* arrival to the last response byte.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    pub sent: u64,
    pub ok: u64,
    /// Non-200 responses plus transport failures.
    pub errors: u64,
    /// Requests whose sender was not free at the scheduled arrival
    /// (their latency includes the wait, per open-loop rules).
    pub late: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub error_rate: f64,
    /// `sent / wall-clock`, for checking the offered rate was achieved.
    pub achieved_rps: f64,
    pub elapsed_ns: u64,
}

/// Runs the schedule to completion and aggregates.
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_hz.max(0.001));
    let next = AtomicU64::new(0);
    let lat = Mutex::new(Vec::<u64>::with_capacity(cfg.requests as usize));
    let counters = Mutex::new((0u64, 0u64, 0u64)); // (ok, errors, late)
    let start = Instant::now();
    thread::scope(|scope| {
        for _ in 0..cfg.senders.max(1) {
            scope.spawn(|| {
                let mut local_lat = Vec::new();
                let (mut ok, mut errors, mut late) = (0u64, 0u64, 0u64);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.requests {
                        break;
                    }
                    let due = interval.mul_f64(i as f64);
                    let now = start.elapsed();
                    if now < due {
                        thread::sleep(due - now);
                    } else if now > due + Duration::from_millis(1) {
                        late += 1;
                    }
                    match one_request(cfg) {
                        Ok(200) => ok += 1,
                        _ => errors += 1,
                    }
                    // Scheduled-arrival latency: queueing delay on this
                    // side (a busy sender) counts against the server's
                    // percentiles, exactly as a real client would see it.
                    local_lat.push(start.elapsed().saturating_sub(due).as_nanos() as u64);
                }
                lat.lock()
                    .expect("loadgen latencies poisoned")
                    .extend(local_lat);
                let mut c = counters.lock().expect("loadgen counters poisoned");
                c.0 += ok;
                c.1 += errors;
                c.2 += late;
            });
        }
    });
    let elapsed = start.elapsed();
    let mut lat = lat.into_inner().expect("loadgen latencies poisoned");
    lat.sort_unstable();
    let (ok, errors, late) = counters.into_inner().expect("loadgen counters poisoned");
    let sent = ok + errors;
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx]
    };
    LoadgenReport {
        sent,
        ok,
        errors,
        late,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        max_ns: lat.last().copied().unwrap_or(0),
        error_rate: if sent > 0 {
            errors as f64 / sent as f64
        } else {
            0.0
        },
        achieved_rps: if elapsed.as_secs_f64() > 0.0 {
            sent as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        elapsed_ns: elapsed.as_nanos() as u64,
    }
}

/// One closed-socket request: connect, send, read the status line, drain
/// the response. Returns the HTTP status.
fn one_request(cfg: &LoadgenConfig) -> Result<u16, ()> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|_| ())?;
    stream.set_read_timeout(Some(cfg.timeout)).map_err(|_| ())?;
    stream
        .set_write_timeout(Some(cfg.timeout))
        .map_err(|_| ())?;
    let mut w = stream.try_clone().map_err(|_| ())?;
    write!(
        w,
        "POST /query HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        cfg.addr,
        cfg.body.len()
    )
    .map_err(|_| ())?;
    w.write_all(cfg.body.as_bytes()).map_err(|_| ())?;
    w.flush().map_err(|_| ())?;
    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line).map_err(|_| ())?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(())?;
    // `Connection: close` → the server ends the response with EOF; drain
    // so the measurement covers the full body.
    let mut sink = [0u8; 4096];
    loop {
        match r.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => return Err(()),
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_reports_zeros() {
        let report = run(&LoadgenConfig {
            requests: 0,
            ..LoadgenConfig::default()
        });
        assert_eq!((report.sent, report.ok, report.errors), (0, 0, 0));
        assert_eq!(report.error_rate, 0.0);
    }

    #[test]
    fn unreachable_server_counts_errors_not_panics() {
        // A port from the ephemeral range with nothing listening: every
        // request must come back as an error, schedule still completes.
        let report = run(&LoadgenConfig {
            addr: "127.0.0.1:1".to_string(),
            rate_hz: 1000.0,
            requests: 5,
            senders: 2,
            timeout: Duration::from_millis(500),
            ..LoadgenConfig::default()
        });
        assert_eq!(report.sent, 5);
        assert_eq!(report.errors, 5);
        assert!((report.error_rate - 1.0).abs() < 1e-9);
    }
}
