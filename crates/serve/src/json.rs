//! Minimal JSON: a recursive-descent parser for request bodies and an
//! escaping writer for responses. Dependency-free by design (the whole
//! serving tier is `std`-only); strict enough for a network boundary —
//! depth-capped, size-capped by the HTTP layer, and every malformed input
//! is an `Err`, never a panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted from the wire.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object fields in source order are irrelevant to us; a map gives
    /// cheap lookup and rejects duplicate keys trivially (last wins).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A non-negative integer (rejecting fractions and out-of-range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0).then_some(n as u64)
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                want as char, self.pos
            ))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    map.insert(key, self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at offset {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // recombined — query strings are plain text and
                            // astral escapes can arrive unescaped as UTF-8.
                            let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                            out.push(ch);
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                Some(c) if c < 0x20 => return Err("raw control byte in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Appends `s` JSON-escaped (with surrounding quotes) onto `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = parse(r#"{"query":"//a[b]","docs":["x","y"],"count":true,"hold_ms":25}"#).unwrap();
        assert_eq!(v.get("query").unwrap().as_str(), Some("//a[b]"));
        assert_eq!(v.get("count").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("hold_ms").unwrap().as_u64(), Some(25));
        let docs: Vec<&str> = v
            .get("docs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(docs, ["x", "y"]);
    }

    #[test]
    fn escapes_and_reparses() {
        let nasty = "a\"b\\c\nd\te\u{0001}f";
        let v = parse(&format!("{{\"k\":{}}}", escaped(nasty))).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "01x",
            "{\"a\":1}tail",
            "\u{0007}",
            "[--1]",
            "\"\\u12\"",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Depth bomb: error, not stack overflow.
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_unicode() {
        assert_eq!(parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("  [ ]  ").unwrap(), Json::Arr(vec![]));
    }
}
