//! Process signal → atomic flag: the serving tier's only unsafe
//! boundary (whitelisted in `xwq lint`). `SIGINT`/`SIGTERM` set a
//! process-global flag that `xwq serve` polls to start a graceful
//! drain; nothing else happens in handler context, because almost
//! nothing is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
const SIG_ERR: usize = usize::MAX;

extern "C" {
    /// ISO C `signal(2)`, linked from the platform libc that `std`
    /// already pulls in — no new dependency. The handler argument and
    /// return value are `void (*)(int)` smuggled as `usize`.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The installed handler: a single atomic store, the canonical
/// async-signal-safe operation.
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes `SIGINT` and `SIGTERM` to the shutdown flag. Returns `false`
/// if the platform refused either registration (the caller keeps
/// running; it just won't drain on signals).
pub fn install_shutdown_handler() -> bool {
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is the ISO C registration call with the
    // documented signature; `handler` is a non-capturing `extern "C"`
    // function whose body performs only an atomic store, which is
    // async-signal-safe. No Rust state other than the static atomic is
    // touched from handler context.
    let a = unsafe { signal(SIGINT, handler) };
    // SAFETY: as above.
    let b = unsafe { signal(SIGTERM, handler) };
    a != SIG_ERR && b != SIG_ERR
}

/// True once any routed signal has fired.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the flag from Rust (tests, and an in-process equivalent of a
/// signal for the CLI's `--drain-after-ms` test hook).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip_and_handler_installs() {
        assert!(install_shutdown_handler());
        // Exercise the handler exactly as the kernel would call it.
        on_signal(SIGTERM);
        assert!(shutdown_requested());
    }
}
