//! End-to-end tests for the serving tier over real sockets: protocol
//! correctness, streaming, overload (`503`), malformed-input hardening,
//! and graceful drain.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xwq_index::TopologyKind;
use xwq_obs::Registry;
use xwq_serve::{ServeConfig, Server};
use xwq_shard::{AdmissionConfig, Corpus, PlacementPolicy, ShardedConfig, ShardedSession};

/// Three small documents over two shards; `//x[y]` selects one node in
/// `alpha` and `beta`, two in `gamma`.
fn sample_session(admission: AdmissionConfig) -> Arc<ShardedSession> {
    let corpus = Corpus::new(2, PlacementPolicy::RoundRobin);
    corpus
        .add_xml("alpha", "<r><x><y/></x><x/></r>", TopologyKind::Array)
        .unwrap();
    corpus
        .add_xml("beta", "<r><y/><x><y/></x></r>", TopologyKind::Succinct)
        .unwrap();
    corpus
        .add_xml(
            "gamma",
            "<r><x><y/></x><x/><x><y/></x></r>",
            TopologyKind::Array,
        )
        .unwrap();
    Arc::new(ShardedSession::with_config(
        Arc::new(corpus),
        ShardedConfig {
            workers_per_shard: 1,
            admission,
            ..ShardedConfig::default()
        },
    ))
}

fn start_server(admission: AdmissionConfig, cfg: ServeConfig) -> Server {
    Server::start(
        sample_session(admission),
        Arc::new(Registry::new()),
        "127.0.0.1:0",
        cfg,
    )
    .unwrap()
}

fn injecting_config() -> ServeConfig {
    ServeConfig {
        allow_latency_injection: true,
        ..ServeConfig::default()
    }
}

/// Sends raw bytes, returns the full response until EOF.
fn raw_round_trip(server: &Server, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(bytes).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// One `POST /query` with `Connection: close`; returns the raw response.
fn post_query(server: &Server, body: &str) -> String {
    raw_round_trip(
        server,
        format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

#[test]
fn healthz_metrics_and_basic_query() {
    let server = start_server(AdmissionConfig::default(), ServeConfig::default());

    let health = raw_round_trip(
        &server,
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&health), 200);
    assert_eq!(body_of(&health), "ok\n");

    let resp = post_query(&server, r#"{"query":"//x[y]","count":true}"#);
    assert_eq!(status_of(&resp), 200, "{resp}");
    let body = body_of(&resp);
    for needle in [
        r#""doc":"alpha","shard":0,"count":1"#,
        r#""doc":"beta","shard":1,"count":1"#,
        r#""doc":"gamma","shard":0,"count":2"#,
        r#""failures":0"#,
        r#""strategy":"auto""#,
    ] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }

    // Node lists + CLI-style paths in the non-count response.
    let resp = post_query(&server, r#"{"query":"//x[y]","docs":["gamma"]}"#);
    let body = body_of(&resp);
    assert!(
        body.contains(r#""paths":["/r[1]/x[1]","/r[1]/x[3]"]"#),
        "{body}"
    );

    // The metrics route renders Prometheus text with the HTTP family in
    // it (the three 200s above are already recorded).
    let metrics = raw_round_trip(
        &server,
        b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&metrics), 200);
    let text = body_of(&metrics);
    assert!(
        text.contains("# TYPE xwq_http_requests_total counter"),
        "{text}"
    );
    assert!(
        text.contains("xwq_http_requests_total{status=\"200\"} 3"),
        "{text}"
    );
    assert!(text.contains("xwq_http_request_latency_ns"), "{text}");
    assert!(text.contains("xwq_http_connections_active"), "{text}");
    server.shutdown();
}

#[test]
fn text_format_matches_cli_layout_and_keepalive_pipelines() {
    let server = start_server(AdmissionConfig::default(), ServeConfig::default());

    let resp = post_query(
        &server,
        r#"{"query":"//x[y]","format":"text","count":true}"#,
    );
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("X-Xwq-Failures: 0"), "{resp}");
    assert_eq!(
        body_of(&resp),
        "       1  alpha\n       1  beta\n       2  gamma\n"
    );

    // Two requests on one keep-alive connection.
    let body = r#"{"query":"//y","count":true,"docs":["alpha"]}"#;
    let one = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(one.as_bytes()).unwrap();
    s.write_all(one.replace("alpha", "gamma").as_bytes())
        .unwrap();
    let mut r = BufReader::new(s);
    for expected_doc in ["alpha", "gamma"] {
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 200"), "{line}");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            r.read_line(&mut h).unwrap();
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            if h == "\r\n" {
                break;
            }
        }
        let mut body = vec![0u8; content_length];
        r.read_exact(&mut body).unwrap();
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains(expected_doc), "{body}");
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_and_server_survives() {
    let server = start_server(
        AdmissionConfig::default(),
        ServeConfig {
            max_header_bytes: 512,
            max_body_bytes: 1024,
            read_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
    );

    // Garbage instead of HTTP.
    let resp = raw_round_trip(&server, b"\x16\x03\x01garbage\r\n\r\n");
    assert_eq!(status_of(&resp), 400);
    // Oversized headers.
    let flood = format!("GET /healthz HTTP/1.1\r\nA: {}\r\n\r\n", "y".repeat(2048));
    assert_eq!(status_of(&raw_round_trip(&server, flood.as_bytes())), 413);
    // Oversized declared body.
    let resp = raw_round_trip(
        &server,
        b"POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 413);
    // Truncated request: client stops mid-header and closes.
    {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"POST /query HTT").unwrap();
    }
    // Idle connection: no bytes at all → 408 after the read timeout.
    let resp = raw_round_trip(&server, b"GET /healthz HTTP/1.1\r\n");
    assert_eq!(status_of(&resp), 408);
    // Bad JSON, bad query, bad strategy, unknown field, unknown doc,
    // hold_ms without the injection flag.
    for (body, want) in [
        (r#"{"query""#, 400),
        (r#"{"query":"///"}"#, 400),
        (r#"{"query":"//x","strategy":"warp"}"#, 400),
        (r#"{"query":"//x","turbo":true}"#, 400),
        (r#"{"query":"//x","docs":["nope"]}"#, 400),
        (r#"{"query":"//x","hold_ms":10}"#, 400),
        (r#"{"query":"//x","stream":true,"format":"text"}"#, 400),
        (r#"[1,2,3]"#, 400),
    ] {
        let resp = post_query(&server, body);
        assert_eq!(status_of(&resp), want, "{body} → {resp}");
    }
    // Wrong method / unknown route.
    let resp = raw_round_trip(&server, b"GET /query HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status_of(&resp), 405);
    let resp = raw_round_trip(&server, b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status_of(&resp), 404);

    // After all of that, the server still serves.
    let resp = post_query(&server, r#"{"query":"//x[y]","count":true}"#);
    assert_eq!(status_of(&resp), 200);
    server.shutdown();
}

/// Reads one chunked response incrementally off `r`, returning each
/// chunk's payload as it arrives through `on_chunk`.
fn read_chunked(r: &mut BufReader<TcpStream>, mut on_chunk: impl FnMut(String)) {
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 200"), "{line}");
    loop {
        let mut h = String::new();
        r.read_line(&mut h).unwrap();
        if h == "\r\n" {
            break;
        }
        assert!(
            !h.to_ascii_lowercase().starts_with("content-length"),
            "streaming response must be chunked, got {h}"
        );
    }
    loop {
        let mut size_line = String::new();
        r.read_line(&mut size_line).unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
        let mut payload = vec![0u8; size + 2];
        r.read_exact(&mut payload).unwrap();
        if size == 0 {
            break;
        }
        payload.truncate(size);
        on_chunk(String::from_utf8(payload).unwrap());
    }
}

#[test]
fn streaming_delivers_first_row_while_rest_is_held() {
    let server = start_server(AdmissionConfig::default(), injecting_config());
    let hold = 400u64;
    let body = format!(r#"{{"query":"//x[y]","count":true,"stream":true,"hold_ms":{hold}}}"#);
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!(
            "POST /query HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    let started = Instant::now();
    let mut arrivals = Vec::new();
    let mut r = BufReader::new(s);
    read_chunked(&mut r, |chunk| arrivals.push((started.elapsed(), chunk)));
    // 3 document rows + 1 stats tail.
    assert_eq!(arrivals.len(), 4, "{arrivals:?}");
    assert!(arrivals[0].1.contains(r#""doc":"alpha""#), "{arrivals:?}");
    assert!(arrivals[3].1.contains(r#""stats""#), "{arrivals:?}");
    // The first row arrived before the post-emit holds of the later
    // documents elapsed: streaming, not buffer-then-send.
    let budget = Duration::from_millis(2 * hold);
    assert!(
        arrivals[0].0 < budget,
        "first row after {:?}, holds not overlapped",
        arrivals[0].0
    );
    assert!(
        arrivals[3].0 >= Duration::from_millis(2 * hold),
        "stats tail arrived before the holds elapsed: {arrivals:?}"
    );
    server.shutdown();
}

#[test]
fn admission_overload_maps_to_503_with_retry_after() {
    // One admission slot, no waiting room: the held streaming request
    // occupies the slot; the next query must bounce with 503.
    let server = start_server(
        AdmissionConfig {
            max_active: 1,
            max_waiting: 0,
            timeout: None,
        },
        injecting_config(),
    );
    let addr = server.local_addr();
    // The holder signals after its first chunk — only then does the
    // probe below run, so the probe cannot race the holder out of the
    // single admission slot (`max_waiting: 0` rejects either side).
    let (first_chunk_tx, first_chunk_rx) = std::sync::mpsc::channel();
    let holder = std::thread::spawn(move || {
        let body = r#"{"query":"//x[y]","count":true,"stream":true,"hold_ms":700}"#;
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(
            format!(
                "POST /query HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
        .unwrap();
        let mut r = BufReader::new(s);
        let mut chunks = Vec::new();
        read_chunked(&mut r, |c| {
            if chunks.is_empty() {
                first_chunk_tx.send(()).unwrap();
            }
            chunks.push(c);
        });
        chunks
    });
    first_chunk_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("holder never produced a first chunk");
    // The holder owns the admission slot (it sleeps 700 ms after each of
    // its 3 documents, and the permit is held through the sink): the
    // probe must bounce.
    let resp = post_query(&server, r#"{"query":"//x[y]","count":true}"#);
    assert_eq!(status_of(&resp), 503, "{resp}");
    assert!(resp.contains("Retry-After: 1"), "{resp}");
    assert!(body_of(&resp).contains("error"), "{resp}");
    let chunks = holder.join().unwrap();
    assert_eq!(
        chunks.len(),
        4,
        "held stream must still complete: {chunks:?}"
    );
    // Slot free again → queries succeed.
    let resp = post_query(&server, r#"{"query":"//x[y]","count":true}"#);
    assert_eq!(status_of(&resp), 200, "{resp}");
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_and_refuses_new_connections() {
    let server = start_server(AdmissionConfig::default(), injecting_config());
    let addr = server.local_addr();
    // In-flight request whose evaluation is held well past the shutdown
    // call below.
    let inflight = std::thread::spawn(move || {
        let body = r#"{"query":"//x[y]","count":true,"stream":true,"hold_ms":500}"#;
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(
            format!(
                "POST /query HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
        .unwrap();
        let mut r = BufReader::new(s);
        let mut chunks = Vec::new();
        read_chunked(&mut r, |c| chunks.push(c));
        chunks
    });
    // Wait until the request is actually being served (first chunk out
    // needs the fan-out running), then drain.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();
    // Shutdown returned: the in-flight response must have completed in
    // full…
    let chunks = inflight.join().unwrap();
    assert_eq!(chunks.len(), 4, "drain truncated the response: {chunks:?}");
    assert!(chunks[3].contains("stats"), "{chunks:?}");
    // …and the port no longer accepts work: either connect is refused or
    // the socket is dead (accepted by a backlog then closed unserved).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut out = String::new();
            let n = s.read_to_string(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "drained server answered a new request: {out}");
        }
    }
}

#[test]
fn accept_queue_overflow_sheds_with_503() {
    // One worker pinned down by a held request, one queue slot filled by
    // an idle connection: the next connection must be shed with 503 on
    // the acceptor thread.
    let server = start_server(
        AdmissionConfig::default(),
        ServeConfig {
            http_workers: 1,
            max_queued: 1,
            allow_latency_injection: true,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let holder = std::thread::spawn(move || {
        let body = r#"{"query":"//x[y]","count":true,"stream":true,"hold_ms":800}"#;
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(
            format!(
                "POST /query HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
        .unwrap();
        let mut r = BufReader::new(s);
        read_chunked(&mut r, |_| {});
    });
    // Give the lone worker time to claim the holder, then park one idle
    // connection in the single queue slot.
    std::thread::sleep(Duration::from_millis(200));
    let filler = TcpStream::connect(addr).unwrap();
    // The acceptor handles connections in order, so by the time this one
    // is accepted the filler already occupies the queue → shed.
    let resp = raw_round_trip(
        &server,
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 503, "{resp}");
    assert!(resp.contains("Retry-After: 1"), "{resp}");
    // Close the filler before draining so the worker sees a clean EOF
    // instead of waiting out the read timeout.
    drop(filler);
    holder.join().unwrap();
    server.shutdown();
}
