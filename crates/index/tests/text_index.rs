//! The text index: content lookup, per-content node lists, and substring
//! search (the stand-in for SXSI's compressed text index).

use xwq_index::TreeIndex;
use xwq_xml::parse;

fn ix() -> TreeIndex {
    TreeIndex::build(
        &parse(r#"<r a="x1"><p>hello</p><p>world</p><p>hello</p><q b="hello"/></r>"#).unwrap(),
    )
}

#[test]
fn content_interning_and_lists() {
    let ix = ix();
    // Distinct contents: x1, hello, world (hello appears three times:
    // two text nodes and one attribute value).
    assert_eq!(ix.distinct_text_count(), 3);
    let hello = ix.lookup_text("hello").expect("interned");
    let nodes = ix.text_list(hello);
    assert_eq!(nodes.len(), 3);
    for &v in nodes {
        assert_eq!(ix.text_of(v), Some("hello"));
    }
    assert!(nodes.windows(2).all(|w| w[0] < w[1]), "document order");
    assert_eq!(ix.lookup_text("nope"), None);
}

#[test]
fn elements_have_no_content() {
    let ix = ix();
    assert_eq!(ix.text_of(0), None, "root element");
    assert_eq!(ix.text_of(ix.first_child(0)), Some("x1"), "attribute @a");
}

#[test]
fn substring_search() {
    let ix = ix();
    let hits = ix.text_nodes_containing("ell");
    assert_eq!(hits.len(), 3);
    let hits = ix.text_nodes_containing("o");
    assert_eq!(hits.len(), 4, "hello ×3 and world");
    assert!(ix.text_nodes_containing("zzz").is_empty());
    assert!(hits.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn empty_needle_matches_every_content_node() {
    let ix = ix();
    assert_eq!(ix.text_nodes_containing("").len(), 5);
}
