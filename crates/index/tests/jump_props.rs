//! Property tests: jumping primitives must agree with naive scans over
//! arbitrary random documents, on both topology backends.

use proptest::prelude::*;
use xwq_index::{LabelSet, NodeId, TopologyKind, TreeIndex, NONE};
use xwq_xml::{Document, TreeBuilder};

/// Builds a random document from (pops, label) pairs; labels come from a
/// 5-letter alphabet so jumps have plenty of matches and misses.
fn build_doc(ops: &[(u8, u8)]) -> Document {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    let mut b = TreeBuilder::new();
    b.open("root");
    let mut depth = 1usize;
    for &(pops, label) in ops {
        let pops = (pops as usize).min(depth - 1);
        for _ in 0..pops {
            b.close();
            depth -= 1;
        }
        b.open(NAMES[label as usize % NAMES.len()]);
        depth += 1;
    }
    for _ in 0..depth {
        b.close();
    }
    b.finish()
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..4, 0u8..5), 1..200)
}

fn label_set(ix: &TreeIndex, names: &[&str]) -> LabelSet {
    LabelSet::from_ids(
        ix.alphabet().len(),
        names.iter().filter_map(|n| ix.alphabet().lookup(n)),
    )
}

/// Naive first node in `[lo, hi)` with label in `s`.
fn naive_range(ix: &TreeIndex, lo: NodeId, hi: NodeId, s: &LabelSet) -> NodeId {
    (lo..hi.min(ix.len() as NodeId))
        .find(|&v| s.contains(ix.label(v)))
        .unwrap_or(NONE)
}

proptest! {
    #[test]
    fn jumps_agree_with_naive(ops in arb_ops(), subsets in prop::collection::vec(prop::bool::ANY, 5)) {
        let doc = build_doc(&ops);
        let ix = TreeIndex::build(&doc);
        let names: Vec<&str> = ["a", "b", "c", "d", "e"]
            .iter()
            .zip(&subsets)
            .filter(|(_, &keep)| keep)
            .map(|(&n, _)| n)
            .collect();
        let s = label_set(&ix, &names);
        for v in 0..doc.len() as NodeId {
            prop_assert_eq!(
                ix.jump_desc_xml(v, &s),
                naive_range(&ix, v + 1, ix.subtree_end(v), &s),
                "jump_desc_xml({})", v
            );
            prop_assert_eq!(
                ix.jump_desc_bin(v, &s),
                naive_range(&ix, v + 1, ix.bin_subtree_end(v), &s),
                "jump_desc_bin({})", v
            );
            // lt / rt against naive chain walks.
            let mut cur = ix.first_child(v);
            let mut expect = NONE;
            while cur != NONE {
                if s.contains(ix.label(cur)) { expect = cur; break; }
                cur = ix.first_child(cur);
            }
            prop_assert_eq!(ix.jump_leftmost(v, &s), expect, "lt({})", v);
            let mut cur = ix.next_sibling(v);
            let mut expect = NONE;
            while cur != NONE {
                if s.contains(ix.label(cur)) { expect = cur; break; }
                cur = ix.next_sibling(cur);
            }
            prop_assert_eq!(ix.jump_rightmost(v, &s), expect, "rt({})", v);
        }
    }

    #[test]
    fn topologies_agree(ops in arb_ops()) {
        let doc = build_doc(&ops);
        let a = TreeIndex::build_with(&doc, TopologyKind::Array);
        let s = TreeIndex::build_with(&doc, TopologyKind::Succinct);
        for v in 0..doc.len() as NodeId {
            prop_assert_eq!(a.first_child(v), s.first_child(v));
            prop_assert_eq!(a.next_sibling(v), s.next_sibling(v));
            prop_assert_eq!(a.parent(v), s.parent(v));
            prop_assert_eq!(a.subtree_end(v), s.subtree_end(v));
            prop_assert_eq!(a.bin_subtree_end(v), s.bin_subtree_end(v));
            prop_assert_eq!(a.depth(v), s.depth(v));
        }
    }

    #[test]
    fn topmost_enumeration_is_topmost(ops in arb_ops()) {
        // The dt/ft chain from the root enumerates exactly the binary-topmost
        // labelled nodes: every labelled node is a (binary-)descendant-or-self
        // of exactly one enumerated node.
        let doc = build_doc(&ops);
        let ix = TreeIndex::build(&doc);
        let s = label_set(&ix, &["b"]);
        let root = ix.root();
        let mut frontier = vec![];
        let mut cur = if s.contains(ix.label(root)) { root } else { ix.jump_desc_bin(root, &s) };
        while cur != NONE {
            frontier.push(cur);
            cur = ix.jump_following_bin(cur, &s, root);
        }
        // Frontier nodes are pairwise non-nested in the binary view...
        for w in frontier.windows(2) {
            prop_assert!(ix.bin_subtree_end(w[0]) <= w[1]);
        }
        // ...and every b-node is inside some frontier node's binary subtree.
        let b = ix.alphabet().lookup("b");
        if let Some(b) = b {
            for &v in ix.label_list(b) {
                prop_assert!(
                    frontier.iter().any(|&f| f <= v && v < ix.bin_subtree_end(f)),
                    "b-node {} not covered", v
                );
            }
        }
    }
}
