//! The jumping tree index (Def. 3.2).

use crate::{Topology, TopologyKind};
use std::sync::{Arc, OnceLock};
use xwq_succinct::{Store, StrTable};
use xwq_xml::{Alphabet, Document, LabelId, LabelKind, LabelSet, NodeId, NONE};

/// Per-label statistics the cost-based query planner consumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct LabelStat {
    /// Number of nodes carrying the label (`== label_count`).
    pub count: u32,
    /// Shallowest occurrence (root = 0); `u32::MAX` for absent labels.
    pub min_depth: u32,
    /// Deepest occurrence; 0 for absent labels.
    pub max_depth: u32,
    /// Sum of occurrence depths (`/ count` = mean depth).
    pub total_depth: u64,
    /// Sum of child counts over occurrences (`/ count` = mean fanout).
    pub total_children: u64,
    /// Sum of subtree sizes (self included) over occurrences
    /// (`/ count` = mean subtree extent).
    pub total_subtree: u64,
}

impl LabelStat {
    /// Mean depth of this label's occurrences (0 when absent).
    pub fn avg_depth(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_depth as f64 / self.count as f64
        }
    }

    /// Mean number of children of this label's occurrences.
    pub fn avg_children(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_children as f64 / self.count as f64
        }
    }

    /// Mean subtree size (self included) of this label's occurrences.
    pub fn avg_subtree(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.total_subtree as f64 / self.count as f64
        }
    }
}

/// Whole-document statistics: per-label aggregates plus a depth histogram.
/// Computed lazily on first use (one topology pass) and shared between
/// clones of the same index, so the zero-copy mmap open path never pays
/// for them up front. The planner's cost model consumes the per-label
/// counts, min/mean depths, fanouts and subtree extents; the histogram
/// and max depths ride along for tooling and future calibration (they
/// fall out of the same pass for free).
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Deepest node (root = 0).
    pub max_depth: u32,
    /// One entry per alphabet label.
    pub labels: Vec<LabelStat>,
    /// `depth_histogram[d]` = number of nodes at depth `d` (clamped into
    /// the last bucket beyond [`Self::DEPTH_BUCKETS`]).
    pub depth_histogram: Vec<u32>,
}

impl IndexStats {
    /// Number of exact depth-histogram buckets; deeper nodes share the last.
    pub const DEPTH_BUCKETS: usize = 64;

    fn compute(ix: &TreeIndex) -> Self {
        let n = ix.len();
        let mut labels = vec![LabelStat::default(); ix.alphabet.len()];
        for s in &mut labels {
            s.min_depth = u32::MAX;
        }
        let mut depth_histogram = vec![0u32; Self::DEPTH_BUCKETS + 1];
        let mut max_depth = 0u32;
        for v in 0..n as NodeId {
            let d = ix.depth(v);
            max_depth = max_depth.max(d);
            depth_histogram[(d as usize).min(Self::DEPTH_BUCKETS)] += 1;
            let s = &mut labels[ix.label(v) as usize];
            s.count += 1;
            s.min_depth = s.min_depth.min(d);
            s.max_depth = s.max_depth.max(d);
            s.total_depth += d as u64;
            s.total_subtree += (ix.subtree_end(v) - v) as u64;
            let p = ix.parent(v);
            if p != NONE {
                labels[ix.label(p) as usize].total_children += 1;
            }
        }
        Self {
            nodes: n,
            max_depth,
            labels,
            depth_histogram,
        }
    }
}

/// A static index over one document: topology + per-label preorder arrays.
///
/// All jumping functions run in O(|L| · log n); navigation is O(1) (array
/// topology) or O(polylog) (succinct topology). `label_count` is O(1), which
/// the hybrid evaluation strategy (§4.4) relies on.
#[derive(Clone, Debug)]
pub struct TreeIndex {
    alphabet: Alphabet,
    labels: Store<LabelId>,
    topo: Topology,
    /// For each label, the sorted list of preorder ids carrying it. Each
    /// list is a [`Store`]: owned when built, a zero-copy view when loaded
    /// from a memory-mapped `.xwqi` file.
    label_lists: Vec<Store<NodeId>>,
    /// Distinct text/attribute contents, interned.
    text_values: StrTable,
    /// Content id per node (`u32::MAX` for elements).
    text_ids: Store<u32>,
    /// For each content id, the sorted list of nodes carrying it (always
    /// derived in memory — it is not part of the wire format).
    text_lists: Vec<Vec<NodeId>>,
    /// Lazily computed planner statistics, shared across clones.
    stats: Arc<OnceLock<IndexStats>>,
    /// Per-label prefix maxima of subtree ends over the preorder lists
    /// (`pm[l][i] = max(subtree_end(list_l[j]) for j ≤ i)`), built lazily
    /// on the first ancestor probe and shared across clones. One extra
    /// `u32` per node in total.
    anc_ends: Arc<OnceLock<Vec<Vec<NodeId>>>>,
    /// Process-unique identity, shared by clones (see [`Self::identity`]).
    uid: u64,
}

/// Backing counter for [`TreeIndex::identity`]; never reused, so a stale
/// cache tag can never collide with a later document the way a recycled
/// heap address could.
static NEXT_INDEX_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl TreeIndex {
    /// Builds an index with the default (array) topology.
    pub fn build(doc: &Document) -> Self {
        Self::build_with(doc, TopologyKind::Array)
    }

    /// Builds an index with an explicit topology backend.
    pub fn build_with(doc: &Document, kind: TopologyKind) -> Self {
        let alphabet = doc.alphabet().clone();
        let labels: Vec<LabelId> = doc.nodes().map(|v| doc.label(v)).collect();
        let mut label_lists = vec![Vec::new(); alphabet.len()];
        for (v, &l) in labels.iter().enumerate() {
            label_lists[l as usize].push(v as NodeId);
        }
        // Text index: intern distinct contents, invert to node lists
        // (the stand-in for SXSI's compressed text index — the interface
        // is "which nodes carry this content", in document order).
        let mut text_values: Vec<String> = Vec::new();
        let mut text_map: crate::FxHashMap<String, u32> = crate::FxHashMap::default();
        let mut text_ids = vec![u32::MAX; doc.len()];
        let mut text_lists: Vec<Vec<NodeId>> = Vec::new();
        for v in doc.nodes() {
            if let Some(t) = doc.text(v) {
                let id = *text_map.entry(t.to_string()).or_insert_with(|| {
                    text_values.push(t.to_string());
                    text_lists.push(Vec::new());
                    (text_values.len() - 1) as u32
                });
                text_ids[v as usize] = id;
                text_lists[id as usize].push(v);
            }
        }
        Self {
            alphabet,
            labels: labels.into(),
            topo: Topology::build(doc, kind),
            label_lists: label_lists.into_iter().map(Store::from).collect(),
            text_values: text_values.into(),
            text_ids: text_ids.into(),
            text_lists,
            stats: Arc::new(OnceLock::new()),
            anc_ends: Arc::new(OnceLock::new()),
            uid: NEXT_INDEX_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The indexed document's alphabet.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The topology backend (for persistence).
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The distinct text contents, in id order (for persistence).
    pub fn text_values(&self) -> &StrTable {
        &self.text_values
    }

    /// Per-node content ids, `u32::MAX` for elements (for persistence).
    pub fn text_ids(&self) -> &[u32] {
        &self.text_ids
    }

    /// Reassembles an index from deserialized parts (the `.xwqi`
    /// persistence layer). `label_lists` (the per-label preorder arrays)
    /// are validated to be a partition of `0..n` consistent with `labels`;
    /// the per-content inverted lists are rebuilt from `text_ids` in one
    /// pass (cheaper to derive than to store and validate).
    pub fn from_raw_parts(
        alphabet: Alphabet,
        labels: impl Into<Store<LabelId>>,
        topo: Topology,
        label_lists: Vec<Store<NodeId>>,
        text_values: impl Into<StrTable>,
        text_ids: impl Into<Store<u32>>,
    ) -> Result<Self, String> {
        let (labels, text_values, text_ids) = (labels.into(), text_values.into(), text_ids.into());
        let n = labels.len();
        if topo.len() != n {
            return Err("index: topology / label array length mismatch".to_string());
        }
        if label_lists.len() != alphabet.len() {
            return Err("index: one label list per alphabet entry required".to_string());
        }
        if text_ids.len() != n {
            return Err("index: text id array length mismatch".to_string());
        }
        let mut seen = 0usize;
        for (l, list) in label_lists.iter().enumerate() {
            let mut prev = None;
            for &v in list.iter() {
                if (v as usize) >= n || labels[v as usize] as usize != l {
                    return Err(format!("index: label list {l} contains a wrong node"));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(format!("index: label list {l} is not strictly ascending"));
                }
                prev = Some(v);
            }
            seen += list.len();
        }
        if seen != n {
            return Err("index: label lists do not partition the nodes".to_string());
        }
        let mut text_lists: Vec<Vec<NodeId>> = vec![Vec::new(); text_values.len()];
        for (v, &id) in text_ids.iter().enumerate() {
            if id != u32::MAX {
                let list = text_lists
                    .get_mut(id as usize)
                    .ok_or_else(|| format!("index: node {v} has an out-of-range content id"))?;
                list.push(v as NodeId);
            }
        }
        Ok(Self {
            alphabet,
            labels,
            topo,
            label_lists,
            text_values,
            text_ids,
            text_lists,
            stats: Arc::new(OnceLock::new()),
            anc_ends: Arc::new(OnceLock::new()),
            uid: NEXT_INDEX_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> LabelId {
        self.labels[v as usize]
    }

    /// Label name of `v`.
    #[inline]
    pub fn name(&self, v: NodeId) -> &str {
        self.alphabet.name(self.label(v))
    }

    /// First child (`π·1`) or [`NONE`].
    #[inline]
    pub fn first_child(&self, v: NodeId) -> NodeId {
        self.topo.first_child(v)
    }

    /// Next sibling (`π·2`) or [`NONE`].
    #[inline]
    pub fn next_sibling(&self, v: NodeId) -> NodeId {
        self.topo.next_sibling(v)
    }

    /// Parent or [`NONE`].
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.topo.parent(v)
    }

    /// One past the last id of `v`'s XML subtree.
    #[inline]
    pub fn subtree_end(&self, v: NodeId) -> NodeId {
        self.topo.subtree_end(v)
    }

    /// Depth of `v` (root = 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.topo.depth(v)
    }

    /// True if `a` is a strict XML ancestor of `d`.
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a < d && d < self.subtree_end(a)
    }

    /// One past the last id of `v`'s subtree *in the binary (FCNS) view*:
    /// `v`'s XML subtree plus all following siblings and their subtrees.
    #[inline]
    pub fn bin_subtree_end(&self, v: NodeId) -> NodeId {
        let p = self.parent(v);
        if p == NONE {
            self.len() as NodeId
        } else {
            self.subtree_end(p)
        }
    }

    /// Global number of nodes labelled `l` — O(1), used by hybrid evaluation.
    #[inline]
    pub fn label_count(&self, l: LabelId) -> usize {
        self.label_lists[l as usize].len()
    }

    /// Planner statistics (label list lengths, depth histograms, fanouts),
    /// computed on first call with one topology pass and cached; clones of
    /// this index share the cache.
    pub fn stats(&self) -> &IndexStats {
        self.stats.get_or_init(|| IndexStats::compute(self))
    }

    /// A cheap process-unique identity for this index, shared by clones.
    /// Per-`(document, query)` plan and memo caches tag their entries with
    /// it to detect being handed a different document. Drawn from a
    /// never-reused counter, so — unlike a heap address — a dropped
    /// document's identity can never be recycled by a later one (no ABA).
    pub fn identity(&self) -> u64 {
        self.uid
    }

    /// All nodes labelled `l`, in document order.
    #[inline]
    pub fn label_list(&self, l: LabelId) -> &[NodeId] {
        &self.label_lists[l as usize]
    }

    fn anc_ends(&self) -> &[Vec<NodeId>] {
        self.anc_ends.get_or_init(|| {
            self.label_lists
                .iter()
                .map(|list| {
                    let mut pm = Vec::with_capacity(list.len());
                    let mut m: NodeId = 0;
                    for &v in list.iter() {
                        m = m.max(self.subtree_end(v));
                        pm.push(m);
                    }
                    pm
                })
                .collect()
        })
    }

    /// Does `v` have a strict ancestor labelled `l`? Two binary searches
    /// over `l`'s preorder list and its prefix-max subtree-end array: the
    /// candidates are the entries `u < v`, and since preorder ranges are
    /// laminar, one of them contains `v` iff the running maximum of their
    /// subtree ends exceeds `v`.
    pub fn has_label_ancestor(&self, l: LabelId, v: NodeId) -> bool {
        let list = &self.label_lists[l as usize];
        let k = list.partition_point(|&u| u < v);
        k > 0 && self.anc_ends()[l as usize][k - 1] > v
    }

    /// The ancestors of `v` labelled `l`, outermost first. Each yielded
    /// node is found with O(log n) work: the walk starts at the outermost
    /// containing entry (binary search on the prefix-max array) and skips
    /// every non-containing same-label subtree with one binary search.
    /// This is the index primitive behind the VM's `UpwardMatch` lowering
    /// — deep upward contexts cost O(log n) per candidate instead of a
    /// parent-chain walk.
    pub fn label_ancestors(&self, l: LabelId, v: NodeId) -> LabelAncestors<'_> {
        let list: &[NodeId] = &self.label_lists[l as usize];
        let pm = &self.anc_ends()[l as usize];
        let k = list.partition_point(|&u| u < v);
        // First containing entry: `pm[i] > v ≥ pm[i-1]` means entry `i`
        // itself ends past `v` (it set the new maximum), and no earlier
        // entry contains `v`.
        let pos = pm[..k].partition_point(|&e| e <= v);
        LabelAncestors {
            ix: self,
            list,
            v,
            pos,
            k,
            probes: 2,
        }
    }

    /// The nearest (deepest) strict ancestor of `v` labelled `l`.
    pub fn nearest_label_ancestor(&self, l: LabelId, v: NodeId) -> Option<NodeId> {
        self.label_ancestors(l, v).last()
    }

    /// Smallest node id in `[lo, hi)` whose label is in `L`, or [`NONE`].
    ///
    /// This is the primitive behind `dt` and `ft`: one binary search per
    /// label in `L`.
    pub fn first_labeled_in_range(&self, lo: NodeId, hi: NodeId, l_set: &LabelSet) -> NodeId {
        if lo >= hi {
            return NONE;
        }
        let mut best = NONE;
        for l in l_set.iter() {
            let list = &self.label_lists[l as usize];
            let i = list.partition_point(|&v| v < lo);
            if let Some(&v) = list.get(i) {
                if v < hi && (best == NONE || v < best) {
                    best = v;
                }
            }
        }
        best
    }

    /// `dt(π, L)` over the *binary* tree: first node after `π` in document
    /// order, within `π`'s binary subtree, whose label is in `L`.
    #[inline]
    pub fn jump_desc_bin(&self, v: NodeId, l_set: &LabelSet) -> NodeId {
        self.first_labeled_in_range(v + 1, self.bin_subtree_end(v), l_set)
    }

    /// `ft(π, L, π₀)` over the *binary* tree: first node following `π`'s
    /// binary subtree, inside `π₀`'s binary subtree, with label in `L`.
    #[inline]
    pub fn jump_following_bin(&self, v: NodeId, l_set: &LabelSet, scope: NodeId) -> NodeId {
        self.first_labeled_in_range(self.bin_subtree_end(v), self.bin_subtree_end(scope), l_set)
    }

    /// `dt` in the *XML* sense: first strict XML descendant of `v` with label
    /// in `L` (used by the baseline and hybrid strategies).
    #[inline]
    pub fn jump_desc_xml(&self, v: NodeId, l_set: &LabelSet) -> NodeId {
        self.first_labeled_in_range(v + 1, self.subtree_end(v), l_set)
    }

    /// `ft` in the *XML* sense: first node after `v`'s XML subtree, before
    /// `hi`, with label in `L`.
    #[inline]
    pub fn jump_following_xml(&self, v: NodeId, l_set: &LabelSet, hi: NodeId) -> NodeId {
        self.first_labeled_in_range(self.subtree_end(v), hi, l_set)
    }

    /// `lt(π, L)`: first node on the binary left-most path below `π`
    /// (`π·1`, `π·1·1`, …, i.e. the first-child chain) with label in `L`.
    pub fn jump_leftmost(&self, v: NodeId, l_set: &LabelSet) -> NodeId {
        let mut cur = self.first_child(v);
        while cur != NONE {
            if l_set.contains(self.label(cur)) {
                return cur;
            }
            cur = self.first_child(cur);
        }
        NONE
    }

    /// `rt(π, L)`: first node on the binary right-most path below `π`
    /// (`π·2`, `π·2·2`, …, i.e. the next-sibling chain) with label in `L`.
    pub fn jump_rightmost(&self, v: NodeId, l_set: &LabelSet) -> NodeId {
        let mut cur = self.next_sibling(v);
        while cur != NONE {
            if l_set.contains(self.label(cur)) {
                return cur;
            }
            cur = self.next_sibling(cur);
        }
        NONE
    }

    /// Node kind shortcut.
    #[inline]
    pub fn kind(&self, v: NodeId) -> LabelKind {
        self.alphabet.kind(self.label(v))
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.topo.heap_bytes()
            + self.labels.heap_bytes()
            + self
                .label_lists
                .iter()
                .map(|l| l.heap_bytes())
                .sum::<usize>()
    }

    /// Heap footprint of the topology alone (for the memory ablation).
    pub fn topology_heap_bytes(&self) -> usize {
        self.topo.heap_bytes()
    }

    /// Text content of a text/attribute node, `None` for elements.
    pub fn text_of(&self, v: NodeId) -> Option<&str> {
        let id = self.text_ids[v as usize];
        if id == u32::MAX {
            None
        } else {
            Some(self.text_values.get(id as usize))
        }
    }

    /// Content id of a text/attribute node, `None` for elements (the id
    /// form of [`Self::text_of`], for content-id comparisons).
    #[inline]
    pub fn text_id_of(&self, v: NodeId) -> Option<u32> {
        let id = self.text_ids[v as usize];
        if id == u32::MAX {
            None
        } else {
            Some(id)
        }
    }

    /// Id of an exact text content, if it occurs in the document.
    pub fn lookup_text(&self, content: &str) -> Option<u32> {
        // The distinct-content list is scanned; for repeated lookups the
        // engine compiles the answer into the query once.
        self.text_values
            .iter()
            .position(|t| t == content)
            .map(|i| i as u32)
    }

    /// Nodes carrying exactly this content id, in document order.
    pub fn text_list(&self, id: u32) -> &[NodeId] {
        &self.text_lists[id as usize]
    }

    /// Sorted nodes whose content *contains* `needle` (substring search
    /// over the distinct contents — the stand-in for SXSI's FM-index).
    pub fn text_nodes_containing(&self, needle: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (i, t) in self.text_values.iter().enumerate() {
            if t.contains(needle) {
                out.extend_from_slice(&self.text_lists[i]);
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of distinct text contents.
    pub fn distinct_text_count(&self) -> usize {
        self.text_values.len()
    }
}

/// Iterator over the ancestors of one node carrying one label, outermost
/// first (see [`TreeIndex::label_ancestors`]). The containing entries of
/// a preorder list form a nested chain; the iterator walks the chain
/// inward, skipping each non-containing same-label subtree with one
/// binary search.
pub struct LabelAncestors<'a> {
    ix: &'a TreeIndex,
    list: &'a [NodeId],
    v: NodeId,
    /// Scan position in `list`.
    pos: usize,
    /// Exclusive bound: entries `≥ k` start at or after `v`.
    k: usize,
    probes: u32,
}

impl LabelAncestors<'_> {
    /// Binary searches performed so far (for `jumps` accounting).
    pub fn probes(&self) -> u32 {
        self.probes
    }
}

impl Iterator for LabelAncestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.pos < self.k {
            let u = self.list[self.pos];
            let end = self.ix.subtree_end(u);
            if end > self.v {
                // `u < v < end`: a containing chain member. The next
                // member, if any, lies strictly inside it.
                self.pos += 1;
                return Some(u);
            }
            // `u`'s subtree ends before `v`: no entry inside it can
            // contain `v` either — skip them all.
            self.pos += self.list[self.pos..self.k].partition_point(|&w| w < end);
            self.probes += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xwq_xml::parse;

    /// `<a><b><c/><b/></b><c><b/></c></a>` — a=0 b=1 c=2 b=3 c=4 b=5.
    fn idx() -> TreeIndex {
        TreeIndex::build(&parse("<a><b><c/><b/></b><c><b/></c></a>").unwrap())
    }

    fn set(ix: &TreeIndex, names: &[&str]) -> LabelSet {
        LabelSet::from_ids(
            ix.alphabet().len(),
            names.iter().map(|n| ix.alphabet().lookup(n).unwrap()),
        )
    }

    #[test]
    fn label_ancestor_probes() {
        let ix = idx();
        let a = ix.alphabet().lookup("a").unwrap();
        let b = ix.alphabet().lookup("b").unwrap();
        let c = ix.alphabet().lookup("c").unwrap();
        assert!(ix.has_label_ancestor(a, 3));
        assert!(ix.has_label_ancestor(b, 3));
        assert!(!ix.has_label_ancestor(c, 3));
        assert!(!ix.has_label_ancestor(b, 1));
        assert_eq!(ix.label_ancestors(b, 3).collect::<Vec<_>>(), vec![1]);
        assert_eq!(ix.nearest_label_ancestor(b, 3), Some(1));
        assert_eq!(ix.nearest_label_ancestor(c, 5), Some(4));
        assert_eq!(ix.nearest_label_ancestor(c, 2), None);
        assert_eq!(ix.label_ancestors(a, 2).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn label_ancestors_match_parent_chain_walk() {
        let ix = TreeIndex::build(
            &parse("<a><b><a><b><a><b/><c/></a></b></a></b><a><c><a/></c></a></a>").unwrap(),
        );
        for v in 0..ix.len() as NodeId {
            for l in 0..ix.alphabet().len() as LabelId {
                let mut expect = Vec::new();
                let mut p = ix.parent(v);
                while p != NONE {
                    if ix.label(p) == l {
                        expect.push(p);
                    }
                    p = ix.parent(p);
                }
                expect.reverse();
                assert_eq!(
                    ix.label_ancestors(l, v).collect::<Vec<_>>(),
                    expect,
                    "label {l} node {v}"
                );
                assert_eq!(ix.has_label_ancestor(l, v), !expect.is_empty());
                assert_eq!(ix.nearest_label_ancestor(l, v), expect.last().copied());
            }
        }
    }

    #[test]
    fn label_lists_and_counts() {
        let ix = idx();
        let b = ix.alphabet().lookup("b").unwrap();
        assert_eq!(ix.label_list(b), &[1, 3, 5]);
        assert_eq!(ix.label_count(b), 3);
        assert_eq!(ix.label_count(ix.alphabet().lookup("a").unwrap()), 1);
    }

    #[test]
    fn xml_descendant_jumps() {
        let ix = idx();
        let bs = set(&ix, &["b"]);
        assert_eq!(ix.jump_desc_xml(0, &bs), 1);
        assert_eq!(ix.jump_desc_xml(1, &bs), 3);
        assert_eq!(ix.jump_desc_xml(4, &bs), 5);
        assert_eq!(ix.jump_desc_xml(5, &bs), NONE);
        let cs = set(&ix, &["c"]);
        assert_eq!(ix.jump_desc_xml(0, &cs), 2);
        // Multi-label jump picks the earliest.
        let bc = set(&ix, &["b", "c"]);
        assert_eq!(ix.jump_desc_xml(0, &bc), 1);
    }

    #[test]
    fn binary_subtree_ends() {
        let ix = idx();
        // Binary subtree of node 1 (b) = 1..6 (its subtree + sibling c's).
        assert_eq!(ix.bin_subtree_end(1), 6);
        assert_eq!(ix.bin_subtree_end(2), 4); // c(2) + sibling b(3)
        assert_eq!(ix.bin_subtree_end(0), 6);
        assert_eq!(ix.bin_subtree_end(5), 6);
    }

    #[test]
    fn following_jumps() {
        let ix = idx();
        let bs = set(&ix, &["b"]);
        // After node 1's XML subtree (ids 1..4), next b before 6 is 5.
        assert_eq!(ix.jump_following_xml(1, &bs, 6), 5);
        // After node 1's *binary* subtree (1..6) there is nothing.
        assert_eq!(ix.jump_following_bin(1, &bs, 0), NONE);
        // After node 2's binary subtree (2..4): b at 5 is inside scope 1.
        assert_eq!(ix.jump_following_bin(2, &bs, 1), 5);
    }

    #[test]
    fn leftmost_rightmost_paths() {
        let ix = idx();
        let cs = set(&ix, &["c"]);
        // Left-most path below a(0): b(1) then c(2).
        assert_eq!(ix.jump_leftmost(0, &cs), 2);
        let bs = set(&ix, &["b"]);
        assert_eq!(ix.jump_leftmost(0, &bs), 1);
        // Right-most path below b(1): sibling chain -> c(4).
        assert_eq!(ix.jump_rightmost(1, &cs), 4);
        assert_eq!(ix.jump_rightmost(1, &bs), NONE);
        // c(2)'s sibling chain has b(3).
        assert_eq!(ix.jump_rightmost(2, &bs), 3);
    }

    #[test]
    fn ancestor_tests() {
        let ix = idx();
        assert!(ix.is_ancestor(0, 5));
        assert!(ix.is_ancestor(1, 3));
        assert!(!ix.is_ancestor(1, 4));
        assert!(!ix.is_ancestor(3, 3));
        assert!(!ix.is_ancestor(5, 0));
    }

    #[test]
    fn empty_label_set_never_jumps() {
        let ix = idx();
        let empty = LabelSet::empty(ix.alphabet().len());
        assert_eq!(ix.jump_desc_xml(0, &empty), NONE);
        assert_eq!(ix.jump_leftmost(0, &empty), NONE);
        assert_eq!(ix.jump_rightmost(1, &empty), NONE);
    }
}
