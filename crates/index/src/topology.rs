//! Tree topology backends.
//!
//! The paper's §1 problem (1): pointer-based in-memory XML trees cost 5–10×
//! the document size, so SXSI uses succinct trees. Both backends below expose
//! the same operations; [`ArrayTopology`] is the conventional pointer (well,
//! index) structure, [`SuccinctTopology`] stores ~2.2 bits per node plus
//! directories.

use xwq_succinct::{Store, SuccinctTree, SuccinctTreeBuilder};
use xwq_xml::{Document, NodeId, NONE};

/// Which backend a [`crate::TreeIndex`] should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TopologyKind {
    /// Plain preorder arrays: fastest navigation, ~20 bytes/node.
    #[default]
    Array,
    /// Balanced-parentheses succinct tree: ~2.2 bits/node + rank directory.
    Succinct,
}

/// Tree navigation operations shared by both backends.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Array-backed.
    Array(ArrayTopology),
    /// Succinct (balanced parentheses).
    Succinct(SuccinctTopology),
}

impl Topology {
    /// Builds the chosen backend from a document.
    pub fn build(doc: &Document, kind: TopologyKind) -> Self {
        match kind {
            TopologyKind::Array => Topology::Array(ArrayTopology::build(doc)),
            TopologyKind::Succinct => Topology::Succinct(SuccinctTopology::build(doc)),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Topology::Array(t) => t.parent.len(),
            Topology::Succinct(t) => t.tree.len(),
        }
    }

    /// Always false (trees are non-empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First child (`π·1`) or [`NONE`].
    #[inline]
    pub fn first_child(&self, v: NodeId) -> NodeId {
        match self {
            Topology::Array(t) => t.first_child[v as usize],
            Topology::Succinct(t) => t.tree.first_child(v).unwrap_or(NONE),
        }
    }

    /// Next sibling (`π·2`) or [`NONE`].
    #[inline]
    pub fn next_sibling(&self, v: NodeId) -> NodeId {
        match self {
            Topology::Array(t) => t.next_sibling[v as usize],
            Topology::Succinct(t) => t.tree.next_sibling(v).unwrap_or(NONE),
        }
    }

    /// Parent or [`NONE`] for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        match self {
            Topology::Array(t) => t.parent[v as usize],
            Topology::Succinct(t) => t.tree.parent(v).unwrap_or(NONE),
        }
    }

    /// One past the last preorder id in `v`'s (XML) subtree.
    #[inline]
    pub fn subtree_end(&self, v: NodeId) -> NodeId {
        match self {
            Topology::Array(t) => t.subtree_end[v as usize],
            Topology::Succinct(t) => t.tree.subtree_end(v),
        }
    }

    /// Depth (root = 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        match self {
            Topology::Array(t) => t.depth[v as usize],
            Topology::Succinct(t) => t.tree.depth(v),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Topology::Array(t) => t.heap_bytes(),
            Topology::Succinct(t) => t.tree.heap_bytes(),
        }
    }

    /// Which backend this topology uses.
    pub fn kind(&self) -> TopologyKind {
        match self {
            Topology::Array(_) => TopologyKind::Array,
            Topology::Succinct(_) => TopologyKind::Succinct,
        }
    }

    /// The array backend's derived arrays `(subtree_end, depth)`, if this
    /// is an array topology. The three navigation arrays are shared with
    /// the document, so the `.xwqi` persistence layer stores only these two.
    pub fn array_derived(&self) -> Option<(&[NodeId], &[u32])> {
        match self {
            Topology::Array(t) => Some((t.subtree_end.as_slice(), t.depth.as_slice())),
            Topology::Succinct(_) => None,
        }
    }

    /// The succinct backend's tree, if this is a succinct topology.
    pub fn succinct_tree(&self) -> Option<&SuccinctTree> {
        match self {
            Topology::Succinct(t) => Some(&t.tree),
            Topology::Array(_) => None,
        }
    }

    /// Reassembles an array topology from the document's navigation arrays
    /// plus deserialized derived arrays (the `.xwqi` persistence layer).
    /// `subtree_end` / `depth` are validated against the document in one
    /// O(n) pass — they must be exactly what [`ArrayTopology::build`]
    /// would derive.
    pub fn from_array_parts(
        doc: &Document,
        subtree_end: impl Into<Store<NodeId>>,
        depth: impl Into<Store<u32>>,
    ) -> Result<Self, String> {
        let (subtree_end, depth) = (subtree_end.into(), depth.into());
        let n = doc.len();
        if subtree_end.len() != n || depth.len() != n {
            return Err("topology: derived array length mismatch".to_string());
        }
        for v in 0..n as NodeId {
            let ns = doc.next_sibling(v);
            let p = doc.parent(v);
            let expect_end = if ns != NONE {
                ns
            } else if p != NONE {
                subtree_end[p as usize]
            } else {
                n as u32
            };
            if subtree_end[v as usize] != expect_end {
                return Err(format!("topology: bad subtree_end at node {v}"));
            }
            // `Document::from_raw_parts` guarantees `p < v` (preorder parent
            // invariant), so `depth[p]` was already checked against its own
            // expected value — bounded by n, so the `+ 1` cannot overflow.
            let expect_depth = if p == NONE { 0 } else { depth[p as usize] + 1 };
            if depth[v as usize] != expect_depth {
                return Err(format!("topology: bad depth at node {v}"));
            }
        }
        // The navigation arrays are shared with the document: cloning the
        // stores is free for borrowed (mmap) views and a plain copy for
        // owned ones — exactly what the collect() did before.
        let (parent, first_child, next_sibling) = doc.nav_stores();
        Ok(Topology::Array(ArrayTopology {
            parent: parent.clone(),
            first_child: first_child.clone(),
            next_sibling: next_sibling.clone(),
            subtree_end,
            depth,
        }))
    }

    /// Wraps a deserialized succinct tree (the `.xwqi` persistence layer).
    /// The tree must have one node per document node.
    pub fn from_succinct_tree(doc: &Document, tree: SuccinctTree) -> Result<Self, String> {
        if tree.len() != doc.len() {
            return Err(format!(
                "topology: succinct tree has {} nodes, document has {}",
                tree.len(),
                doc.len()
            ));
        }
        Ok(Topology::Succinct(SuccinctTopology { tree }))
    }
}

/// Conventional preorder-array topology.
#[derive(Clone, Debug)]
pub struct ArrayTopology {
    pub(crate) parent: Store<NodeId>,
    pub(crate) first_child: Store<NodeId>,
    pub(crate) next_sibling: Store<NodeId>,
    pub(crate) subtree_end: Store<NodeId>,
    pub(crate) depth: Store<u32>,
}

impl ArrayTopology {
    /// Copies the document arrays and derives subtree extents and depths.
    pub fn build(doc: &Document) -> Self {
        let n = doc.len();
        let mut subtree_end = vec![0u32; n];
        let mut depth = vec![0u32; n];
        // A node's subtree ends where its next sibling starts; a last
        // sibling inherits the parent's end. Parents precede children in
        // preorder, so one ascending pass suffices.
        for v in 0..n as u32 {
            let ns = doc.next_sibling(v);
            let p = doc.parent(v);
            subtree_end[v as usize] = if ns != NONE {
                ns
            } else if p != NONE {
                subtree_end[p as usize]
            } else {
                n as u32
            };
        }
        for v in 1..n as u32 {
            depth[v as usize] = depth[doc.parent(v) as usize] + 1;
        }
        let (parent, first_child, next_sibling) = doc.nav_stores();
        Self {
            parent: parent.clone(),
            first_child: first_child.clone(),
            next_sibling: next_sibling.clone(),
            subtree_end: subtree_end.into(),
            depth: depth.into(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.parent.heap_bytes()
            + self.first_child.heap_bytes()
            + self.next_sibling.heap_bytes()
            + self.subtree_end.heap_bytes()
            + self.depth.heap_bytes()
    }
}

/// Succinct balanced-parentheses topology.
#[derive(Clone, Debug)]
pub struct SuccinctTopology {
    pub(crate) tree: SuccinctTree,
}

impl SuccinctTopology {
    /// Builds the parentheses sequence via an iterative preorder walk.
    pub fn build(doc: &Document) -> Self {
        let mut b = SuccinctTreeBuilder::new();
        // Iterative DFS emitting open/close; avoids recursion on deep docs.
        enum Step {
            Open(NodeId),
            Close,
        }
        let mut stack = vec![Step::Open(doc.root())];
        while let Some(step) = stack.pop() {
            match step {
                Step::Open(v) => {
                    b.open();
                    stack.push(Step::Close);
                    // Children pushed in reverse so the first child pops first.
                    let kids: Vec<NodeId> = doc.children(v).collect();
                    for &c in kids.iter().rev() {
                        stack.push(Step::Open(c));
                    }
                }
                Step::Close => b.close(),
            }
        }
        Self { tree: b.finish() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xwq_xml::parse;

    fn doc() -> Document {
        parse("<a><b><d/><e/></b><c><f/></c></a>").unwrap()
    }

    #[test]
    fn backends_agree() {
        let d = doc();
        let a = Topology::build(&d, TopologyKind::Array);
        let s = Topology::build(&d, TopologyKind::Succinct);
        assert_eq!(a.len(), s.len());
        for v in 0..d.len() as u32 {
            assert_eq!(a.first_child(v), s.first_child(v), "fc({v})");
            assert_eq!(a.next_sibling(v), s.next_sibling(v), "ns({v})");
            assert_eq!(a.parent(v), s.parent(v), "parent({v})");
            assert_eq!(a.subtree_end(v), s.subtree_end(v), "end({v})");
            assert_eq!(a.depth(v), s.depth(v), "depth({v})");
        }
    }

    #[test]
    fn subtree_extents() {
        let d = doc();
        let t = Topology::build(&d, TopologyKind::Array);
        // a=0 b=1 d=2 e=3 c=4 f=5
        assert_eq!(t.subtree_end(0), 6);
        assert_eq!(t.subtree_end(1), 4);
        assert_eq!(t.subtree_end(2), 3);
        assert_eq!(t.subtree_end(4), 6);
        assert_eq!(t.subtree_end(5), 6);
    }

    #[test]
    fn succinct_is_smaller_on_large_docs() {
        // Build a 20k-node comb document.
        let mut b = xwq_xml::TreeBuilder::new();
        b.open("r");
        for _ in 0..20_000 {
            b.open("x");
            b.close();
        }
        b.close();
        let d = b.finish();
        let a = Topology::build(&d, TopologyKind::Array);
        let s = Topology::build(&d, TopologyKind::Succinct);
        assert!(
            s.heap_bytes() * 4 < a.heap_bytes(),
            "succinct {} vs array {}",
            s.heap_bytes(),
            a.heap_bytes()
        );
    }
}
