//! The tree index: navigation plus the jumping primitives of Def. 3.2.
//!
//! The paper executes automata over an index that can, from any node, jump
//! to the next node with a label in a set `L` — first labelled descendant
//! (`dt`), first labelled following node within a subtree (`ft`), and the
//! labelled left-most/right-most path descendants (`lt`, `rt`) — plus
//! constant-time global label counts (used by the hybrid strategy).
//!
//! [`TreeIndex`] implements all of these over per-label sorted preorder
//! arrays; tree *topology* (first-child / next-sibling / parent / subtree
//! extents) is provided either by plain arrays ([`TopologyKind::Array`],
//! fast, pointer-heavy) or by a balanced-parentheses succinct tree
//! ([`TopologyKind::Succinct`], compact) — reproducing the paper's §1
//! memory argument. Both expose identical semantics; `cargo bench` has an
//! ablation comparing them.
//!
//! Throughout, nodes are preorder ids and [`NONE`] is the `#` leaf of the
//! binary (first-child/next-sibling) view.

mod fxhash;
mod index;
mod topology;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{IndexStats, LabelAncestors, LabelStat, TreeIndex};
pub use topology::{ArrayTopology, SuccinctTopology, Topology, TopologyKind};

pub use xwq_xml::{Alphabet, Document, LabelId, LabelKind, LabelSet, NodeId, NONE};
