//! A small FxHash-style hasher for integer-keyed tables.
//!
//! The default SipHash is needlessly slow for the dense integer keys
//! (state-set ids, label ids, memo keys) used throughout the engine; the
//! rustc-hash crate is not on this project's approved dependency list, so we
//! vendor the ~10-line multiply-rotate algorithm here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher, identical in spirit to rustc's FxHasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_distributes_sequential_keys() {
        // Sanity: consecutive integers should not collide in low bits.
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let mut buckets = HashSet::new();
        for i in 0..256u64 {
            buckets.insert(bh.hash_one(i) & 0xFF);
        }
        assert!(
            buckets.len() > 128,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
