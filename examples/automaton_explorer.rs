//! Looks inside the engine: compiles a query to its alternating selecting
//! tree automaton and prints the transitions plus the on-the-fly top-down
//! approximation's jump sets (reproducing the Fig. 1 illustration).
//!
//! ```sh
//! cargo run --example automaton_explorer -- '//a//b[c]'
//! ```

use xwq::core::{compile_path, Formula, SkipKind, Tda};
use xwq::xml::Alphabet;
use xwq::xpath::parse_xpath;

fn fmt_phi(phi: &Formula) -> String {
    match phi {
        Formula::True => "⊤".into(),
        Formula::False => "⊥".into(),
        Formula::Or(a, b) => format!("({} ∨ {})", fmt_phi(a), fmt_phi(b)),
        Formula::And(a, b) => format!("({} ∧ {})", fmt_phi(a), fmt_phi(b)),
        Formula::Not(a) => format!("¬{}", fmt_phi(a)),
        Formula::Down1(q) => format!("↓1 q{q}"),
        Formula::Down2(q) => format!("↓2 q{q}"),
    }
}

fn main() {
    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "//a//b[c]".into());
    // A demonstration alphabet; real engines compile against the document's.
    let mut alphabet = Alphabet::new();
    for l in ["a", "b", "c", "d", "#text"] {
        alphabet.intern(l);
    }
    let path = parse_xpath(&query).expect("parseable query");
    println!("query : {query}");
    println!("parsed: {path}\n");

    let asta = compile_path(&path, &alphabet).expect("compilable query");
    println!(
        "ASTA: {} states, top states {:?}",
        asta.n_states,
        asta.top.iter().map(|q| format!("q{q}")).collect::<Vec<_>>()
    );
    for t in &asta.delta {
        let labels: Vec<&str> = t.labels.iter().map(|l| alphabet.name(l)).collect();
        let arrow = if t.selecting { "⇒" } else { "→" };
        println!(
            "   q{}, {{{}}} {arrow} {}",
            t.q,
            labels.join(","),
            fmt_phi(&t.phi)
        );
    }

    // Walk the top-down approximation from the top set, breadth-first,
    // printing each reachable state set's skip classification.
    println!("\ntop-down approximation (Def. 4.2) and jumps:");
    let mut tda = Tda::new(&asta);
    let start = tda.top_set(&asta);
    let mut seen = vec![start];
    let mut queue = vec![start];
    let mut stats = xwq::core::EvalStats::default();
    while let Some(set) = queue.pop() {
        let members: Vec<String> = tda.sets.get(set).iter().map(|q| format!("q{q}")).collect();
        let info = tda.skip_info(&asta, set);
        let jump: Vec<&str> = info.jump.iter().map(|l| alphabet.name(l)).collect();
        let how = match info.kind {
            SkipKind::Both => format!("jump dt/ft to top-most {{{}}}", jump.join(",")),
            SkipKind::Right => format!("jump rt along siblings to {{{}}}", jump.join(",")),
            SkipKind::Left => format!("jump lt along first-children to {{{}}}", jump.join(",")),
            SkipKind::None => "no jump (step node by node)".into(),
        };
        println!("   {{{}}} : {how}", members.join(","));
        for l in alphabet.ids() {
            let t = tda.trans(&asta, set, l, &mut stats);
            for next in [t.r1, t.r2] {
                if !seen.contains(&next) && !tda.sets.get(next).is_empty() {
                    seen.push(next);
                    queue.push(next);
                }
            }
        }
    }
}
