//! Quickstart: parse XML, build the engine, run queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xwq::core::{Engine, Strategy};
use xwq::xml::parse;

fn main() {
    let doc = parse(
        r#"<library>
             <shelf floor="1">
               <book year="1969"><title>Ubik</title><author>Dick</author></book>
               <book year="1984"><title>Neuromancer</title><author>Gibson</author></book>
             </shelf>
             <shelf floor="2">
               <book year="1992"><title>Snow Crash</title><author>Stephenson</author></book>
               <magazine><title>Byte</title></magazine>
             </shelf>
           </library>"#,
    )
    .expect("well-formed XML");

    let engine = Engine::build(&doc);

    // One-shot convenience API.
    for query in [
        "//book/title",
        "/library/shelf/book[author]",
        "//shelf[ book and magazine ]",
        "//book/@year",
        "//title/text()",
    ] {
        let nodes = engine.query(query).expect("valid query");
        println!("{query}");
        for v in nodes {
            let text = doc
                .text(v)
                .map(str::to_owned)
                .or_else(|| doc.children(v).find_map(|c| doc.text(c).map(str::to_owned)))
                .unwrap_or_default();
            println!("   node {v:>2}  <{}>  {text}", doc.name(v));
        }
    }

    // Compile once, run under different strategies, inspect statistics.
    let q = engine.compile("//book[ title ]").unwrap();
    println!("\nstrategy comparison for //book[ title ]:");
    for s in Strategy::ALL {
        let out = engine.run(&q, s);
        println!(
            "   {:<14} {} result(s), {} node(s) visited",
            s.name(),
            out.nodes.len(),
            out.stats.visited
        );
    }
}
