//! Start-anywhere (hybrid) evaluation in action (§4.4 / Fig. 5).
//!
//! When one label in the query is globally rare, starting the search at its
//! occurrences and checking the remaining context around them beats even the
//! jumping top-down run. This example builds the paper's configuration-A/B
//! style documents and contrasts the two strategies.
//!
//! ```sh
//! cargo run --release --example hybrid_search
//! ```

use xwq::core::{Engine, Strategy};
use xwq::xmark::{config_a, config_b, config_d};

const QUERY: &str = "//listitem//keyword//emph";

fn main() {
    println!("query: {QUERY}\n");
    for (desc, doc) in [
        (
            "A: 75k listitems, 3 keywords (start at keywords)",
            config_a(1.0),
        ),
        (
            "B: 75k listitems, 60k keywords, 4 emphs (start at emphs)",
            config_b(1.0),
        ),
        (
            "D: one hub listitem owns every keyword (worst case)",
            config_d(1.0),
        ),
    ] {
        let engine = Engine::build(&doc);
        let q = engine.compile(QUERY).unwrap();

        let t0 = std::time::Instant::now();
        let hybrid = engine.run(&q, Strategy::Hybrid);
        let t_hybrid = t0.elapsed();

        let t0 = std::time::Instant::now();
        let regular = engine.run(&q, Strategy::Optimized);
        let t_regular = t0.elapsed();

        assert_eq!(hybrid.nodes, regular.nodes);
        println!("{desc}");
        println!(
            "   document: {} nodes, results: {}",
            doc.len(),
            hybrid.nodes.len()
        );
        println!(
            "   hybrid : visited {:>7}  in {:>9.1?}",
            hybrid.stats.visited, t_hybrid
        );
        println!(
            "   regular: visited {:>7}  in {:>9.1?}\n",
            regular.stats.visited, t_regular
        );
    }
    println!("(hybrid picks the spine label with the lowest global count — an O(1)");
    println!(" index lookup — and verifies ancestors upward / collects downward.)");
}
