//! Auction-site analytics: the workloads the paper's introduction motivates —
//! time-critical XPath over a large data-oriented document.
//!
//! Generates an XMark-like auction document and answers the kinds of
//! questions a marketplace dashboard would ask, printing the answer sizes
//! and how little of the document each query had to touch.
//!
//! ```sh
//! cargo run --release --example xmark_analytics [factor]
//! ```

use xwq::core::{Engine, Strategy};
use xwq::xmark::{generate, GenOptions};

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let t0 = std::time::Instant::now();
    let doc = generate(GenOptions { factor, seed: 7 });
    println!(
        "generated auction site: {} nodes in {:?}",
        doc.len(),
        t0.elapsed()
    );
    let t0 = std::time::Instant::now();
    let engine = Engine::build(&doc);
    println!("index built in {:?}\n", t0.elapsed());

    let dashboard: &[(&str, &str)] = &[
        ("items listed in Europe", "/site/regions/europe/item"),
        ("items anywhere", "/site/regions/*/item"),
        (
            "items with dated mail correspondence",
            "/site/regions/*/item[ mailbox/mail/date ]",
        ),
        (
            "reachable sellers (address + phone or homepage)",
            "/site/people/person[ address and (phone or homepage) ]",
        ),
        (
            "highlighted terms inside item descriptions",
            "/site/regions/*/item/description//keyword",
        ),
        (
            "annotated past sales",
            "/site/closed_auctions/closed_auction[ annotation ]",
        ),
        (
            "list items that mix keywords and emphasis",
            "//listitem[ .//keyword and .//emph ]",
        ),
        (
            "anonymous bids (bidder without date)",
            "//bidder[ not(date) ]",
        ),
    ];

    println!(
        "{:<52} {:>8} {:>10} {:>10} {:>9}",
        "question", "answers", "visited", "% of doc", "time"
    );
    for (label, query) in dashboard {
        let q = engine.compile(query).expect("valid query");
        let t0 = std::time::Instant::now();
        let out = engine.run(&q, Strategy::Optimized);
        let dt = t0.elapsed();
        println!(
            "{:<52} {:>8} {:>10} {:>9.2}% {:>8.1?}",
            label,
            out.nodes.len(),
            out.stats.visited,
            100.0 * out.stats.visited as f64 / doc.len() as f64,
            dt
        );
    }
}
