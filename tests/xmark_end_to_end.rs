//! End-to-end: the fifteen Fig. 2 queries over a generated XMark document,
//! every strategy against the independent baseline.

use xwq::core::{Engine, Strategy};
use xwq::xmark::{queries, GenOptions};
use xwq_xpath::parse_xpath;

fn engine() -> Engine {
    let doc = xwq::xmark::generate(GenOptions {
        factor: 0.05,
        seed: 42,
    });
    Engine::build(&doc)
}

#[test]
fn all_queries_all_strategies_match_baseline() {
    let e = engine();
    for (n, q) in queries() {
        let compiled = e.compile(q).unwrap_or_else(|err| panic!("Q{n:02}: {err}"));
        let path = parse_xpath(q).unwrap();
        let (expected, _) = xwq::baseline::evaluate_path(e.index(), &path);
        for s in Strategy::ALL {
            let out = e.run(&compiled, s);
            assert_eq!(
                out.nodes,
                expected,
                "Q{n:02} under {} ({} vs {} nodes)",
                s.name(),
                out.nodes.len(),
                expected.len()
            );
        }
    }
}

#[test]
fn jumping_beats_pruning_on_selective_queries() {
    let e = engine();
    // Q01 touches two nodes; Q05 only listitems/keywords.
    for n in [1, 5, 6] {
        let q = e.compile(xwq::xmark::query(n)).unwrap();
        let p = e.run(&q, Strategy::Pruning);
        let j = e.run(&q, Strategy::Jumping);
        assert_eq!(p.nodes, j.nodes);
        assert!(
            j.stats.visited < p.stats.visited,
            "Q{n:02}: jumping {} !< pruning {}",
            j.stats.visited,
            p.stats.visited
        );
    }
}

#[test]
fn q01_touches_a_handful_of_nodes() {
    // The paper's Fig. 3: Q01 visits 2 nodes with jumping (selected: 1).
    let e = engine();
    let q = e.compile(xwq::xmark::query(1)).unwrap();
    let out = e.run(&q, Strategy::Optimized);
    assert_eq!(out.nodes.len(), 1, "exactly one regions element");
    assert!(
        out.stats.visited <= 4,
        "visited {} nodes for /site/regions",
        out.stats.visited
    );
}

#[test]
fn q10_selects_the_root_only() {
    let e = engine();
    let q = e.compile(xwq::xmark::query(10)).unwrap();
    let out = e.run(&q, Strategy::Optimized);
    assert_eq!(out.nodes, vec![0], "/site[.//keyword] selects the root");
    // Fig. 3 line (2) reports 2 visited nodes for Q10: the root and one
    // keyword witness. Allow a little slack but require the same order of
    // magnitude of skipping.
    assert!(
        out.stats.visited <= 8,
        "visited {} nodes for Q10",
        out.stats.visited
    );
}

#[test]
fn memoization_stays_small_and_hot() {
    let e = engine();
    for (n, q) in queries() {
        let compiled = e.compile(q).unwrap();
        let out = e.run(&compiled, Strategy::Memoized);
        assert!(
            out.stats.memo_entries < 600,
            "Q{n:02}: memo table grew to {}",
            out.stats.memo_entries
        );
        if out.stats.visited > 1000 {
            assert!(
                out.stats.memo_hits > out.stats.visited / 2,
                "Q{n:02}: only {} hits for {} visits",
                out.stats.memo_hits,
                out.stats.visited
            );
        }
    }
}

#[test]
fn hybrid_agrees_on_its_native_queries() {
    let e = engine();
    for n in [2, 3, 5, 6, 11] {
        let q = e.compile(xwq::xmark::query(n)).unwrap();
        let h = e.run(&q, Strategy::Hybrid);
        let o = e.run(&q, Strategy::Optimized);
        assert_eq!(h.nodes, o.nodes, "Q{n:02}");
        assert!(!h.hybrid_fallback, "Q{n:02} should run natively");
    }
}
