//! End-to-end CLI tests for the persistence workflow:
//! `xwq index doc.xml -o doc.xwqi && xwq query --index doc.xwqi '<xpath>'`
//! must produce node-for-node identical output to direct evaluation on
//! `doc.xml`, for every strategy and both topologies.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xwq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xwq"))
        .args(args)
        .output()
        .expect("spawn xwq")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xwq-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

const STRATEGIES: [&str; 6] = ["naive", "pruning", "jumping", "memo", "opt", "hybrid"];

const DOC: &str = r#"<site><regions><europe><item id="1"><name>gold ring</name></item>
<item id="2"><name>silver spoon</name></item></europe>
<asia><item id="3"><name>jade dragon</name><mailbox><mail/></mailbox></item></asia></regions>
<people><person id="p0"><name>Ann</name></person></people></site>"#;

const QUERIES: [&str; 5] = [
    "//item",
    "//item[name]",
    "/site/regions//item/@id",
    "//person/name",
    "//item[mailbox]",
];

#[test]
fn indexed_query_output_is_identical_to_direct_for_every_strategy() {
    let dir = tmp_dir("roundtrip");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let xml = xml.to_str().unwrap();

    for topo in ["array", "succinct"] {
        let xwqi = dir.join(format!("doc-{topo}.xwqi"));
        let xwqi = xwqi.to_str().unwrap();
        let out = xwq(&["index", xml, "-o", xwqi, "--topology", topo]);
        assert!(out.status.success(), "index failed: {out:?}");

        for q in QUERIES {
            for s in STRATEGIES {
                let direct = xwq(&["query", q, xml, "--strategy", s, "--text"]);
                let indexed = xwq(&["query", "--index", xwqi, q, "--strategy", s, "--text"]);
                assert!(direct.status.success(), "direct {q} {s}: {direct:?}");
                assert!(indexed.status.success(), "indexed {q} {s}: {indexed:?}");
                assert_eq!(
                    String::from_utf8_lossy(&direct.stdout),
                    String::from_utf8_lossy(&indexed.stdout),
                    "{topo}/{s}: output diverges on {q}"
                );
                assert!(
                    !String::from_utf8_lossy(&direct.stdout).trim().is_empty(),
                    "{q} unexpectedly selected nothing"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_version_exit_zero() {
    for flag in ["--help", "-h", "--version", "-V"] {
        let out = xwq(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0: {out:?}");
        assert!(!out.stdout.is_empty(), "{flag} must print to stdout");
    }
    let help = xwq(&["--help"]);
    let text = String::from_utf8_lossy(&help.stdout);
    for needle in ["index", "query", "batch", "--strategy"] {
        assert!(text.contains(needle), "help is missing {needle:?}");
    }
}

#[test]
fn bad_usage_exits_two_and_missing_files_exit_one() {
    assert_eq!(xwq(&[]).status.code(), Some(2));
    assert_eq!(
        xwq(&["query", "--strategy", "bogus", "//a", "x.xml"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        xwq(&["index", "nope.xml", "-o", "out.xwqi"]).status.code(),
        Some(1)
    );
    assert_eq!(
        xwq(&["query", "--index", "nope.xwqi", "//a"]).status.code(),
        Some(1)
    );
    let unknown = xwq(&["query", "--frobnicate", "//a", "x.xml"]);
    assert_eq!(unknown.status.code(), Some(2));
    // Flags that only apply to another subcommand are rejected, not
    // silently ignored.
    assert_eq!(
        xwq(&["query", "//a", "x.xml", "--repeat", "5"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        xwq(&["batch", "--xml", "x.xml", "q.txt", "--text"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn corrupt_index_file_fails_cleanly() {
    let dir = tmp_dir("corrupt");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let xwqi = dir.join("doc.xwqi");
    let out = xwq(&["index", xml.to_str().unwrap(), "-o", xwqi.to_str().unwrap()]);
    assert!(out.status.success());

    // Truncate the file and flip a payload byte: both must exit 1 with a
    // format diagnostic, not crash.
    let bytes = std::fs::read(&xwqi).unwrap();
    let trunc = dir.join("trunc.xwqi");
    std::fs::write(&trunc, &bytes[..bytes.len() / 2]).unwrap();
    let out = xwq(&["query", "--index", trunc.to_str().unwrap(), "//item"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("truncated"));

    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    let bad = dir.join("bad.xwqi");
    std::fs::write(&bad, &flipped).unwrap();
    let out = xwq(&["query", "--index", bad.to_str().unwrap(), "//item"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_serves_a_workload_with_cache_stats() {
    let dir = tmp_dir("batch");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let xwqi = dir.join("doc.xwqi");
    assert!(
        xwq(&["index", xml.to_str().unwrap(), "-o", xwqi.to_str().unwrap()])
            .status
            .success()
    );
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "# workload\n//item\n//item[name]\n\n//person\n").unwrap();

    let out = xwq(&[
        "batch",
        "--index",
        xwqi.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--repeat",
        "10",
        "--stats",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("//item[name]"), "per-query counts missing");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cache:"), "cache stats missing: {stderr}");
    assert!(
        stderr.contains("27 hits"),
        "3 queries x 10 rounds - 3 misses: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `xwq bench` writes machine-readable results and exits cleanly even at
/// a tiny scale factor (the CI smoke configuration).
#[test]
fn bench_subcommand_writes_json() {
    let dir = tmp_dir("bench");
    let out_path = dir.join("BENCH_eval.json");
    let out = xwq(&[
        "bench",
        "--factor",
        "0.002",
        "--repeats",
        "1",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&out_path).expect("bench output file");
    for needle in [
        "\"workload\"",
        "\"eval\"",
        "\"strategy\": \"opt\"",
        "\"ns_per_query\"",
        "\"visited_nodes_per_sec\"",
        "\"memo_hit_rate\"",
        "\"batch\"",
        "\"speedup_vs_serial\"",
        "\"session_cache\"",
    ] {
        assert!(json.contains(needle), "{needle} missing from {json}");
    }
    // Batch workers and threads flag are accepted by `batch` too.
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "//item\n//person\n").unwrap();
    let out = xwq(&[
        "batch",
        "--xml",
        xml.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--threads",
        "4",
        "--stats",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("4 threads"),
        "thread count missing: {stderr}"
    );
    assert!(
        stderr.contains("eval totals:"),
        "eval totals missing: {stderr}"
    );
    // --threads outside batch is rejected.
    assert_eq!(
        xwq(&["query", "//a", "x.xml", "--threads", "2"])
            .status
            .code(),
        Some(2)
    );
    std::fs::remove_dir_all(&dir).ok();
}
