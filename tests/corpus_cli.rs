//! End-to-end CLI tests for the sharded corpus workflow:
//! `xwq xmark` → `xwq corpus build` → `xwq corpus query` must produce
//! identical output at every worker/shard combination, and per-document
//! results must match querying each `.xwqi` on its own.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xwq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xwq"))
        .args(args)
        .output()
        .expect("spawn xwq")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xwq-corpus-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Generates three XMark samples and builds a corpus directory from them.
fn build_corpus(root: &std::path::Path) -> (String, String) {
    let src = root.join("src");
    let out = root.join("corpus");
    std::fs::create_dir_all(&src).unwrap();
    for seed in ["1", "2", "3"] {
        let path = src.join(format!("doc{seed}.xml"));
        let gen = xwq(&[
            "xmark",
            "-o",
            path.to_str().unwrap(),
            "--factor",
            "0.004",
            "--seed",
            seed,
        ]);
        assert!(gen.status.success(), "xmark gen failed: {gen:?}");
    }
    let built = xwq(&[
        "corpus",
        "build",
        src.to_str().unwrap(),
        "-o",
        out.to_str().unwrap(),
    ]);
    assert!(built.status.success(), "corpus build failed: {built:?}");
    (src.display().to_string(), out.display().to_string())
}

#[test]
fn corpus_query_is_identical_across_workers_and_shards() {
    let root = tmp_dir("identical");
    let (_, corpus) = build_corpus(&root);
    for query in ["//item[name]", "//person/name", "//item[mailbox]"] {
        let reference = xwq(&["corpus", "query", &corpus, query]);
        assert!(reference.status.success(), "{query}: {reference:?}");
        let expected = String::from_utf8_lossy(&reference.stdout).to_string();
        assert!(!expected.trim().is_empty(), "{query} selected nothing");
        for workers in ["1", "2", "8"] {
            for shards in ["1", "2", "3"] {
                for policy in ["round-robin", "size-balanced"] {
                    let got = xwq(&[
                        "corpus",
                        "query",
                        &corpus,
                        query,
                        "--workers",
                        workers,
                        "--shards",
                        shards,
                        "--policy",
                        policy,
                    ]);
                    assert!(got.status.success(), "{query}: {got:?}");
                    assert_eq!(
                        expected,
                        String::from_utf8_lossy(&got.stdout),
                        "{query} diverges at {workers} workers / {shards} shards / {policy}"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corpus_results_match_per_document_queries() {
    let root = tmp_dir("per-doc");
    let (_, corpus) = build_corpus(&root);
    let query = "//item[name]";
    let merged = xwq(&["corpus", "query", &corpus, query, "--workers", "2"]);
    assert!(merged.status.success(), "{merged:?}");
    let merged = String::from_utf8_lossy(&merged.stdout).to_string();
    // Rebuild the expected output from per-document `xwq query --index`
    // runs (mmap path), prefixing each node id line with its doc name the
    // way corpus query prints it.
    let mut expected = String::new();
    for doc in ["doc1", "doc2", "doc3"] {
        let xwqi = format!("{corpus}/{doc}.xwqi");
        let single = xwq(&["query", "--index", &xwqi, "--mmap", query]);
        assert!(single.status.success(), "{doc}: {single:?}");
        for line in String::from_utf8_lossy(&single.stdout).lines() {
            let (id, path) = line.trim_start().split_once(' ').unwrap();
            expected.push_str(&format!("{:>8}  {doc}  {}\n", id, path.trim_start()));
        }
    }
    assert_eq!(expected, merged, "corpus merge diverges from per-doc runs");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corpus_query_subset_count_and_errors() {
    let root = tmp_dir("subset");
    let (src, corpus) = build_corpus(&root);
    // --docs subset, deduped and name-ordered.
    let subset = xwq(&[
        "corpus",
        "query",
        &corpus,
        "//item",
        "--docs",
        "doc3,doc1,doc3",
        "--count",
    ]);
    assert!(subset.status.success(), "{subset:?}");
    let lines: Vec<String> = String::from_utf8_lossy(&subset.stdout)
        .lines()
        .map(|l| l.trim_start().to_string())
        .collect();
    assert_eq!(lines.len(), 2);
    assert!(
        lines[0].ends_with("doc1") && lines[1].ends_with("doc3"),
        "{lines:?}"
    );
    // Unknown doc fails the call.
    let unknown = xwq(&["corpus", "query", &corpus, "//item", "--docs", "ghost"]);
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("ghost"));
    // Bad query: per-document errors fail the exit code.
    let bad = xwq(&["corpus", "query", &corpus, "//["]);
    assert!(!bad.status.success());
    // Building from a directory with no XML fails cleanly.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let none = xwq(&[
        "corpus",
        "build",
        empty.to_str().unwrap(),
        "-o",
        corpus.as_str(),
    ]);
    assert!(!none.status.success());
    assert!(String::from_utf8_lossy(&none.stderr).contains("no .xml"));
    // A corpus dir is rebuildable from the same sources (overwrite).
    let again = xwq(&["corpus", "build", &src, "-o", &corpus]);
    assert!(again.status.success(), "{again:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corpus_durable_mutation_lifecycle_via_cli() {
    let root = tmp_dir("durable");
    let corpus = root.join("corpus");
    let corpus = corpus.to_str().unwrap();
    let a = root.join("alpha.xml");
    let b = root.join("beta.xml");
    std::fs::write(&a, "<r><x/><x/></r>").unwrap();
    std::fs::write(&b, "<r><x/><x/><x/></r>").unwrap();

    // add creates the corpus directory; verify passes on the recovered
    // (WAL-replayed) state in a fresh process.
    let add = xwq(&["corpus", "add", corpus, a.to_str().unwrap()]);
    assert!(add.status.success(), "{add:?}");
    let add = xwq(&["corpus", "add", corpus, b.to_str().unwrap()]);
    assert!(add.status.success(), "{add:?}");
    let dup = xwq(&["corpus", "add", corpus, a.to_str().unwrap()]);
    assert!(!dup.status.success(), "duplicate add must fail");
    let verify = xwq(&["corpus", "verify", corpus]);
    assert!(verify.status.success(), "{verify:?}");
    assert!(String::from_utf8_lossy(&verify.stderr).contains("2 ops replayed"));

    // replace swaps in a new generation; rm drops a doc; both land in the
    // catalog other processes see.
    std::fs::write(&a, "<r><x/><x/><x/><x/></r>").unwrap();
    let replace = xwq(&["corpus", "replace", corpus, a.to_str().unwrap()]);
    assert!(replace.status.success(), "{replace:?}");
    let rm = xwq(&["corpus", "rm", corpus, "beta"]);
    assert!(rm.status.success(), "{rm:?}");
    let count = xwq(&["corpus", "query", corpus, "//x", "--count", "--shards", "1"]);
    assert!(count.status.success(), "{count:?}");
    let out = String::from_utf8_lossy(&count.stdout);
    assert!(out.contains("4  alpha"), "replace not visible: {out}");
    assert!(!out.contains("beta"), "removed doc still served: {out}");

    // checkpoint folds the WAL; verify then reports a clean baseline.
    let checkpoint = xwq(&["corpus", "checkpoint", corpus]);
    assert!(checkpoint.status.success(), "{checkpoint:?}");
    let verify = xwq(&["corpus", "verify", corpus]);
    assert!(verify.status.success(), "{verify:?}");
    let err = String::from_utf8_lossy(&verify.stderr);
    assert!(err.contains("0 ops replayed"), "{err}");
    assert!(err.contains("0 WAL ops pending checkpoint"), "{err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corpus_add_killed_by_fault_injection_recovers_on_verify() {
    let root = tmp_dir("fault");
    let corpus = root.join("corpus");
    let corpus = corpus.to_str().unwrap();
    let a = root.join("alpha.xml");
    let b = root.join("beta.xml");
    std::fs::write(&a, "<r><x/><x/></r>").unwrap();
    std::fs::write(&b, "<r><x/><x/><x/></r>").unwrap();
    let add = xwq(&["corpus", "add", corpus, a.to_str().unwrap()]);
    assert!(add.status.success(), "{add:?}");

    // The same injection points CI's crash matrix drives: each kills the
    // commit mid-flight, and verify must recover to a consistent catalog.
    for point in [
        "write:0",
        "write:5",
        "write:17",
        "sync",
        "stage-sync",
        "dir-sync",
    ] {
        let killed = Command::new(env!("CARGO_BIN_EXE_xwq"))
            .args(["corpus", "add", corpus, b.to_str().unwrap()])
            .env("XWQ_CORPUS_FAIL", point)
            .output()
            .expect("spawn xwq");
        assert!(!killed.status.success(), "{point}: injected add must fail");
        let verify = xwq(&["corpus", "verify", corpus]);
        assert!(
            verify.status.success(),
            "{point}: verify after crash: {verify:?}"
        );
        // Recovery may land old or new depending on how far the commit
        // got; scrub back to the old state so every point starts equal.
        let rm = xwq(&["corpus", "rm", corpus, "beta"]);
        let _ = rm; // ok either way: beta exists only if the WAL record survived
    }
    // A bad fail-point token is rejected up front, before any I/O.
    let bad = Command::new(env!("CARGO_BIN_EXE_xwq"))
        .args(["corpus", "add", corpus, b.to_str().unwrap()])
        .env("XWQ_CORPUS_FAIL", "explode")
        .output()
        .expect("spawn xwq");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("XWQ_CORPUS_FAIL"));
    std::fs::remove_dir_all(&root).ok();
}
