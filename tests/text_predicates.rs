//! Text predicates — `text() = '…'` and `contains(text(), '…')` — the
//! SXSI-style extension beyond the paper's didactic fragment. The automaton
//! resolves them into node filters over the index's text lists; the
//! baseline checks content directly; both must agree.

use proptest::prelude::*;
use xwq::core::{Engine, Strategy};
use xwq_xml::TreeBuilder;
use xwq_xpath::parse_xpath;

fn doc() -> xwq_xml::Document {
    xwq_xml::parse(
        r#"<library>
             <book lang="en"><title>dune</title><topic>sand</topic></book>
             <book lang="de"><title>faust</title></book>
             <book lang="en"><title>dune messiah</title></book>
             <note>dune</note>
           </library>"#,
    )
    .unwrap()
}

#[test]
fn exact_text_equality() {
    let d = doc();
    let e = Engine::build(&d);
    // Books whose title is exactly "dune".
    let hits = e.query("//book[ title[ text() = 'dune' ] ]").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(d.name(hits[0]), "book");
    // Any element with text "dune" (book title and the note).
    let hits = e.query("//*[ text() = 'dune' ]").unwrap();
    assert_eq!(hits.len(), 2);
}

#[test]
fn substring_contains() {
    let d = doc();
    let e = Engine::build(&d);
    let hits = e
        .query("//book[ title[ contains(text(), 'dune') ] ]")
        .unwrap();
    assert_eq!(hits.len(), 2, "dune and dune messiah");
    let none = e
        .query("//book[ title[ contains(text(), 'zebra') ] ]")
        .unwrap();
    assert!(none.is_empty());
}

#[test]
fn text_predicates_combine_with_boolean_structure() {
    let d = doc();
    let e = Engine::build(&d);
    let hits = e
        .query("//book[ title[ contains(text(), 'dune') ] and not(topic) ]")
        .unwrap();
    assert_eq!(hits.len(), 1, "dune messiah has no topic");
    let hits = e
        .query("//book[ topic[ text() = 'sand' ] or title[ text() = 'faust' ] ]")
        .unwrap();
    assert_eq!(hits.len(), 2);
}

#[test]
fn attribute_values_are_searchable_too() {
    // Attribute nodes carry their value as content in the text index.
    let d = doc();
    let e = Engine::build(&d);
    let hits = e.query("//book[ @lang[ text() = 'en' ] ]").unwrap();
    assert_eq!(hits.len(), 2);
}

#[test]
fn absent_literal_compiles_to_empty() {
    let d = doc();
    let e = Engine::build(&d);
    let q = e.compile("//book[ title[ text() = 'nope' ] ]").unwrap();
    for s in Strategy::ALL {
        assert!(e.run(&q, s).nodes.is_empty(), "{}", s.name());
    }
}

#[test]
fn display_round_trips_through_parser() {
    for q in [
        "//b[ text() = 'x y' ]",
        "//b[ contains(text(), 'z') ]",
        "//a[ b[ text() = 'q' ] and not(contains(text(), 'w')) ]",
    ] {
        let p1 = parse_xpath(q).unwrap();
        let p2 = parse_xpath(&p1.to_string()).unwrap();
        assert_eq!(p1, p2, "{q}");
    }
}

const WORDS: [&str; 4] = ["alpha", "beta", "gamma", "alpha beta"];

fn build_doc(ops: &[(u8, u8, bool)]) -> xwq_xml::Document {
    let mut b = TreeBuilder::new();
    for n in ["a", "b", "c"] {
        b.reserve(n);
    }
    b.open("a");
    let mut depth = 1usize;
    for &(pops, pick, is_text) in ops {
        let pops = (pops as usize).min(depth - 1);
        for _ in 0..pops {
            b.close();
            depth -= 1;
        }
        if is_text {
            b.text(WORDS[pick as usize % WORDS.len()]);
        } else {
            b.open(["a", "b", "c"][pick as usize % 3]);
            depth += 1;
        }
    }
    for _ in 0..depth {
        b.close();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_strategies_match_baseline_on_text_queries(
        ops in prop::collection::vec((0u8..4, 0u8..4, prop::bool::ANY), 0..120),
        qi in 0..8usize,
    ) {
        const QUERIES: [&str; 8] = [
            "//b[ text() = 'alpha' ]",
            "//b[ contains(text(), 'beta') ]",
            "//a[ b[ text() = 'alpha beta' ] ]",
            "//*[ text() = 'gamma' ]//c",
            "//b[ not(text() = 'alpha') ]",
            "//a[ contains(text(), 'alpha') and b ]",
            "//b/text()[ contains(text(), 'alpha') ]",
            "//a/text()[ text() = 'beta' ]",
        ];
        let d = build_doc(&ops);
        let engine = Engine::build(&d);
        let query = QUERIES[qi];
        let compiled = engine.compile(query).unwrap();
        let path = parse_xpath(query).unwrap();
        let (expected, _) = xwq::baseline::evaluate_path(engine.index(), &path);
        for s in Strategy::ALL {
            let out = engine.run(&compiled, s);
            prop_assert_eq!(
                &out.nodes, &expected,
                "{} on `{}` over {}", s.name(), query, d.to_xml()
            );
        }
    }
}
