//! End-to-end CLI tests for the telemetry layer:
//! `xwq query --trace` must be byte-identical across warm runs, and
//! `xwq stats` must emit well-formed Prometheus text exposition.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xwq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xwq"))
        .args(args)
        .output()
        .expect("spawn xwq")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xwq-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

const DOC: &str = r#"<site><regions><europe><item id="1"><name>gold ring</name></item>
<item id="2"><name>silver spoon</name></item></europe>
<asia><item id="3"><name>jade dragon</name><mailbox><mail/></mailbox></item></asia></regions>
<people><person id="p0"><name>Ann</name></person></people></site>"#;

#[test]
fn trace_output_is_byte_identical_across_runs_and_strategies() {
    let dir = tmp_dir("trace");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let xml = xml.to_str().unwrap();

    for strategy in ["auto", "hybrid", "memo", "naive"] {
        let args = [
            "query",
            "//item[name]",
            xml,
            "--strategy",
            strategy,
            "--trace",
            "--count",
        ];
        let first = xwq(&args);
        assert!(first.status.success(), "{strategy}: {first:?}");
        let text = String::from_utf8_lossy(&first.stdout).into_owned();
        assert!(
            text.contains("Query strategy="),
            "{strategy}: missing trace root:\n{text}"
        );
        assert!(
            text.contains("visited="),
            "{strategy}: missing per-op stats:\n{text}"
        );
        // Wall-clock values would break determinism; render_text(false)
        // must omit them.
        assert!(
            !text.contains("ns="),
            "{strategy}: trace leaks wall-clock time:\n{text}"
        );

        for rerun in 0..2 {
            let again = xwq(&args);
            assert!(
                again.status.success(),
                "{strategy} rerun {rerun}: {again:?}"
            );
            assert_eq!(
                first.stdout, again.stdout,
                "{strategy}: trace output diverges on rerun {rerun}"
            );
        }
    }
}

#[test]
fn trace_composes_with_indexed_documents() {
    let dir = tmp_dir("trace-idx");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let xml = xml.to_str().unwrap();
    let xwqi = dir.join("doc.xwqi");
    let xwqi = xwqi.to_str().unwrap();

    let out = xwq(&["index", xml, "-o", xwqi]);
    assert!(out.status.success(), "index failed: {out:?}");

    let args = [
        "query",
        "--index",
        xwqi,
        "//item[name]",
        "--trace",
        "--count",
    ];
    let first = xwq(&args);
    assert!(first.status.success(), "{first:?}");
    assert!(String::from_utf8_lossy(&first.stdout).contains("Query strategy="));
    let again = xwq(&args);
    assert_eq!(first.stdout, again.stdout, "indexed trace diverges");
}

/// Minimal Prometheus text-exposition validator: every sample line must use a
/// declared metric family, HELP/TYPE must precede samples, histogram buckets
/// must be cumulative and end with `+Inf`, and `_sum`/`_count` must be present
/// for every histogram family.
fn check_prometheus(text: &str) {
    let valid_name = |name: &str| {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    };

    let mut declared: Vec<String> = Vec::new();
    let mut histos: Vec<String> = Vec::new();
    // family -> (buckets seen so far, saw +Inf, last cumulative value)
    let mut bucket_state: std::collections::HashMap<String, (u64, bool)> =
        std::collections::HashMap::new();
    let mut sums: Vec<String> = Vec::new();
    let mut counts: Vec<String> = Vec::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP has a name");
            assert!(valid_name(name), "bad metric name in HELP: {line}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(valid_name(name), "bad metric name in TYPE: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind: {line}"
            );
            declared.push(name.to_string());
            if kind == "histogram" {
                histos.push(name.to_string());
            }
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");

        // Sample line: `name{labels} value` or `name value`.
        let name_end = line
            .find(['{', ' '])
            .unwrap_or_else(|| panic!("malformed sample line: {line}"));
        let name = &line[..name_end];
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| histos.iter().any(|h| h == *f))
            .unwrap_or(name);
        assert!(valid_name(name), "bad sample name: {line}");
        assert!(
            declared.iter().any(|d| d == family),
            "sample before TYPE declaration (or undeclared family): {line}"
        );

        let value: f64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("sample has no numeric value: {line}"));

        if histos.iter().any(|h| h == family) {
            // Key bucket series by family + labels minus the `le` label so
            // differently-labelled series are validated independently.
            let sample = &line[..line.rfind(' ').unwrap()];
            let series = match sample.find('{') {
                None => sample.replace("_bucket", ""),
                Some(brace) => {
                    let kept: Vec<&str> = sample[brace + 1..sample.len() - 1]
                        .split(',')
                        .filter(|l| !l.starts_with("le="))
                        .collect();
                    format!("{}{{{}}}", family, kept.join(","))
                }
            };
            if name.ends_with("_bucket") {
                assert!(
                    line.contains("le="),
                    "bucket sample without le label: {line}"
                );
                let entry = bucket_state.entry(series).or_insert((0, false));
                assert!(!entry.1, "bucket after +Inf: {line}");
                assert!(
                    value as u64 >= entry.0,
                    "buckets not cumulative: {line} (prev {})",
                    entry.0
                );
                entry.0 = value as u64;
                if line.contains("le=\"+Inf\"") {
                    entry.1 = true;
                }
            } else if name.ends_with("_sum") {
                sums.push(family.to_string());
            } else if name.ends_with("_count") {
                counts.push(family.to_string());
            }
        }
    }

    assert!(!declared.is_empty(), "no metric families declared:\n{text}");
    for h in &histos {
        assert!(sums.iter().any(|s| s == h), "histogram {h} missing _sum");
        assert!(
            counts.iter().any(|c| c == h),
            "histogram {h} missing _count"
        );
    }
    for (series, (_, saw_inf)) in &bucket_state {
        assert!(saw_inf, "bucket series {series} never reaches le=\"+Inf\"");
    }
}

#[test]
fn stats_emits_well_formed_prometheus_exposition() {
    let dir = tmp_dir("stats");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "//item[name]\n//item\n//person/name\n").unwrap();

    let out = xwq(&[
        "stats",
        "--xml",
        xml.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--repeat",
        "3",
    ]);
    assert!(out.status.success(), "stats failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);

    check_prometheus(&text);
    assert!(
        text.contains("xwq_session_query_latency_ns"),
        "missing query latency histogram:\n{text}"
    );
    assert!(
        text.contains("xwq_session_query_latency_ns_count 9"),
        "latency count should equal 3 queries x 3 repeats:\n{text}"
    );
    assert!(text.contains("xwq_session_cache_hits_total"), "{text}");
    assert!(text.contains("xwq_session_cache_misses_total"), "{text}");
}

#[test]
fn stats_json_format_carries_percentiles() {
    let dir = tmp_dir("stats-json");
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, DOC).unwrap();
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "//item[name]\n").unwrap();

    let out = xwq(&[
        "stats",
        "--xml",
        xml.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "stats failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for key in ["\"p50\"", "\"p90\"", "\"p99\"", "\"p999\"", "\"max\""] {
        assert!(text.contains(key), "JSON render missing {key}:\n{text}");
    }
    assert!(
        text.contains("xwq_session_query_latency_ns"),
        "JSON render missing latency histogram:\n{text}"
    );
}

#[test]
fn corpus_stats_expose_shard_labelled_metrics() {
    let dir = tmp_dir("corpus");
    let xmls = dir.join("xmls");
    std::fs::create_dir_all(&xmls).unwrap();
    for i in 0..4 {
        std::fs::write(xmls.join(format!("d{i}.xml")), DOC).unwrap();
    }
    let corp = dir.join("corp");
    let out = xwq(&[
        "corpus",
        "build",
        xmls.to_str().unwrap(),
        "-o",
        corp.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "corpus build failed: {out:?}");

    let out = xwq(&[
        "corpus",
        "query",
        corp.to_str().unwrap(),
        "//item[name]",
        "--count",
        "--stats",
        "--workers",
        "2",
    ]);
    assert!(out.status.success(), "corpus query failed: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    for needle in [
        "xwq_corpus_fanout_latency_ns",
        "xwq_shard_queue_wait_ns",
        "xwq_admission_admitted_total",
        "shard=\"0\"",
    ] {
        assert!(
            err.contains(needle),
            "missing {needle} in --stats dump:\n{err}"
        );
    }
}
