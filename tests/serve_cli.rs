//! End-to-end identity test for the serving tier: for the same corpus,
//! query, and strategy, a `POST /query` with `"format": "text"` against
//! `xwq serve` must return **byte-identical** output to `xwq corpus
//! query` run over the same corpus — whatever the server's worker and
//! shard geometry. The network layer is a transport, not a formatter.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn xwq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xwq"))
        .args(args)
        .output()
        .expect("spawn xwq")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xwq-serve-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Generates three XMark samples and builds a corpus directory from them.
fn build_corpus(root: &std::path::Path) -> String {
    let src = root.join("src");
    let out = root.join("corpus");
    std::fs::create_dir_all(&src).unwrap();
    for seed in ["1", "2", "3"] {
        let path = src.join(format!("doc{seed}.xml"));
        let gen = xwq(&[
            "xmark",
            "-o",
            path.to_str().unwrap(),
            "--factor",
            "0.004",
            "--seed",
            seed,
        ]);
        assert!(gen.status.success(), "xmark gen failed: {gen:?}");
    }
    let built = xwq(&[
        "corpus",
        "build",
        src.to_str().unwrap(),
        "-o",
        out.to_str().unwrap(),
    ]);
    assert!(built.status.success(), "corpus build failed: {built:?}");
    out.display().to_string()
}

/// A running `xwq serve` child plus the address it printed. Killed (not
/// drained) on drop — clean shutdown has its own tests.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(corpus: &str, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xwq"))
            .args(["serve", corpus, "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn xwq serve");
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().expect("child stdout"))
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .rsplit("http://")
            .next()
            .expect("listening line carries the address")
            .trim()
            .to_string();
        assert!(addr.contains(':'), "unparsable listening line: {line:?}");
        ServerProc { child, addr }
    }

    /// `POST /query`, returning `(status, body_bytes)`. `Connection:
    /// close` so the body simply runs to EOF.
    fn query(&self, body: &str) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        write!(
            stream,
            "POST /query HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        )
        .expect("send request");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let head_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("header terminator");
        let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        (status, raw[head_end + 4..].to_vec())
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn server_text_responses_are_byte_identical_to_cli_output() {
    let root = tmp_dir("identity");
    let corpus = build_corpus(&root);
    // Two server geometries; the CLI reference is re-run per strategy but
    // is itself geometry-independent (corpus_cli.rs proves that).
    let geometries: &[&[&str]] = &[
        &["--shards", "1", "--workers", "1"],
        &["--shards", "3", "--workers", "2"],
    ];
    for geometry in geometries {
        let server = ServerProc::start(&corpus, geometry);
        for query in ["//item[name]", "//person/name"] {
            for strategy in ["naive", "jumping", "auto"] {
                for count in [false, true] {
                    let mut cli_args =
                        vec!["corpus", "query", &corpus, query, "--strategy", strategy];
                    if count {
                        cli_args.push("--count");
                    }
                    let cli = xwq(&cli_args);
                    assert!(cli.status.success(), "{query}/{strategy}: {cli:?}");
                    let body = format!(
                        "{{\"query\":\"{query}\",\"strategy\":\"{strategy}\",\"count\":{count},\"format\":\"text\"}}"
                    );
                    let (status, served) = server.query(&body);
                    assert_eq!(status, 200, "{query}/{strategy} count={count}");
                    assert_eq!(
                        cli.stdout, served,
                        "{query}/{strategy} count={count} geometry={geometry:?}: \
                         server bytes diverge from CLI stdout"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn server_doc_subset_matches_cli_docs_flag() {
    let root = tmp_dir("subset");
    let corpus = build_corpus(&root);
    let server = ServerProc::start(&corpus, &[]);
    let cli = xwq(&[
        "corpus",
        "query",
        &corpus,
        "//item",
        "--docs",
        "doc3,doc1",
        "--count",
    ]);
    assert!(cli.status.success(), "{cli:?}");
    let (status, served) = server.query(
        "{\"query\":\"//item\",\"docs\":[\"doc3\",\"doc1\"],\"count\":true,\"format\":\"text\"}",
    );
    assert_eq!(status, 200);
    assert_eq!(cli.stdout, served, "--docs subset diverges");
    std::fs::remove_dir_all(&root).ok();
}
