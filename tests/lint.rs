//! Fixture tests for `xwq::lint` — each rule is driven through
//! [`lint_source`](xwq::lint::lint_source) with a seeded violation and a
//! fixed-up twin, asserting the exact `(line, rule)` pairs so diagnostics
//! stay anchored. The final test runs the real workspace pass, which is
//! the same gate CI enforces via `xwq lint`.

use xwq::lint::{lint_source, lint_workspace, Rule};

/// The `(line, rule-name)` pairs of a run, in report order.
fn fired(rel_path: &str, source: &str) -> Vec<(usize, &'static str)> {
    lint_source(rel_path, source)
        .into_iter()
        .map(|d| (d.line, d.rule.name()))
        .collect()
}

const NON_WHITELISTED: &str = "crates/core/src/engine.rs";
const WHITELISTED: &str = "crates/succinct/src/storage.rs";

#[test]
fn clean_source_produces_no_diagnostics() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               pub fn bump(c: &AtomicU64) -> u64 {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
               }\n";
    assert_eq!(fired(NON_WHITELISTED, src), vec![]);
}

#[test]
fn unsafe_outside_whitelist_fires_module_and_safety_rules() {
    let src = "pub fn peek(p: *const u8) -> u8 {\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(
        fired(NON_WHITELISTED, src),
        vec![(2, "unsafe-module"), (2, "safety-comment")]
    );
}

#[test]
fn whitelisted_file_still_requires_a_safety_comment() {
    let src = "pub fn peek(p: *const u8) -> u8 {\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(fired(WHITELISTED, src), vec![(2, "safety-comment")]);
}

#[test]
fn safety_comment_same_line_or_contiguous_block_above_satisfies() {
    let same_line = "let v = unsafe { *p }; // SAFETY: p is in bounds.\n";
    assert_eq!(fired(WHITELISTED, same_line), vec![]);

    let block_above = "// SAFETY: `p` came from `slice.as_ptr()` and the\n\
                       // index was bounds-checked by the caller.\n\
                       let v = unsafe { *p };\n";
    assert_eq!(fired(WHITELISTED, block_above), vec![]);

    // Attributes between the comment and the `unsafe` line don't break
    // the block.
    let through_attr = "// SAFETY: delegated to the caller's contract.\n\
                        #[inline]\n\
                        unsafe fn inner(p: *const u8) -> u8 {\n\
                            // SAFETY: same contract as `inner` itself.\n\
                            unsafe { *p }\n\
                        }\n";
    assert_eq!(fired(WHITELISTED, through_attr), vec![]);

    // A blank line severs the comment block.
    let severed = "// SAFETY: too far away to count.\n\
                   \n\
                   let v = unsafe { *p };\n";
    assert_eq!(fired(WHITELISTED, severed), vec![(3, "safety-comment")]);
}

#[test]
fn rustdoc_safety_section_counts_for_unsafe_fn_declarations() {
    let src = "/// Reads one byte.\n\
               ///\n\
               /// # Safety\n\
               ///\n\
               /// `p` must be valid for reads.\n\
               pub unsafe fn peek(p: *const u8) -> u8 {\n\
                   // SAFETY: caller upholds the `# Safety` contract above.\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(fired(WHITELISTED, src), vec![]);
}

#[test]
fn static_mut_is_banned_but_static_lifetime_is_not() {
    let src = "static mut COUNTER: u64 = 0;\n";
    assert_eq!(fired(NON_WHITELISTED, src), vec![(1, "static-mut")]);

    let lifetime = "fn hold(buf: &'static mut [u8]) -> usize {\n\
                        buf.len()\n\
                    }\n";
    assert_eq!(fired(NON_WHITELISTED, lifetime), vec![]);

    let plain = "static GREETING: &str = \"hi\";\n";
    assert_eq!(fired(NON_WHITELISTED, plain), vec![]);
}

#[test]
fn wildcard_ordering_import_is_flagged() {
    let src = "use std::sync::atomic::Ordering::*;\n";
    assert_eq!(fired(NON_WHITELISTED, src), vec![(1, "ordering-import")]);

    let named = "use std::sync::atomic::Ordering::{Acquire, Release};\n";
    assert_eq!(fired(NON_WHITELISTED, named), vec![]);
}

#[test]
fn atomic_ops_must_name_an_ordering() {
    // A forwarded variable hides the ordering from the call site.
    let src = "fn relay(a: &AtomicU64, order: Ordering) -> u64 {\n\
                   a.load(order)\n\
               }\n";
    assert_eq!(fired(NON_WHITELISTED, src), vec![(2, "atomic-ordering")]);

    // Explicit variant: fine, even when the argument list spans lines.
    let multi_line = "let _ = a.compare_exchange(\n\
                          0,\n\
                          1,\n\
                          Ordering::AcqRel,\n\
                          Ordering::Acquire,\n\
                      );\n";
    assert_eq!(fired(NON_WHITELISTED, multi_line), vec![]);

    // A `fn load(...)` *definition* has no receiver dot — not a call.
    let definition = "pub fn load(&self, order: Ordering) -> u64 {\n\
                          self.value\n\
                      }\n";
    assert_eq!(fired(NON_WHITELISTED, definition), vec![]);

    // Non-atomic methods that happen to share a name (e.g. serde-style
    // `store`) still need the escape hatch — the lint is token-level and
    // deliberately errs toward flagging.
    let shadowed = "// lint: allow(atomic-ordering) — `store` here is a DB handle.\n\
                    db.store(record)\n";
    assert_eq!(fired(NON_WHITELISTED, shadowed), vec![]);
}

#[test]
fn escape_hatch_works_on_same_line_and_line_above() {
    // The escape binds tightly: same line or the one line directly above
    // (a stack of escape comments would *not* all reach the code line).
    let above = "// lint: allow(unsafe-module) lint: allow(safety-comment) — reviewed.\n\
                 let v = unsafe { *p };\n";
    assert_eq!(fired(NON_WHITELISTED, above), vec![]);

    let same_line =
        "let v = unsafe { *p }; // lint: allow(unsafe-module) lint: allow(safety-comment)\n";
    assert_eq!(fired(NON_WHITELISTED, same_line), vec![]);

    // The escape is rule-specific: allowing one rule leaves the other.
    let partial = "// lint: allow(unsafe-module)\n\
                   let v = unsafe { *p };\n";
    assert_eq!(fired(NON_WHITELISTED, partial), vec![(2, "safety-comment")]);
}

#[test]
fn tokens_inside_strings_and_comments_are_ignored() {
    let src = "let msg = \"unsafe static mut Ordering::* .load(x)\";\n\
               // unsafe static mut — commentary, not code.\n\
               /* a.load(order) inside a block comment */\n\
               let raw = r#\"unsafe { *p }\"#;\n";
    assert_eq!(fired(NON_WHITELISTED, src), vec![]);
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = lint_source(NON_WHITELISTED, "static mut X: u8 = 0;\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::StaticMut);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/engine.rs:1: [static-mut]"),
        "unexpected rendering: {rendered}"
    );
}

/// The real gate: the workspace itself must be clean. `cargo test` runs
/// integration tests from the package root, so `.` is the workspace.
#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(std::path::Path::new(".")).expect("walk workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.clean(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
