//! Backward axes: the engine rewrites `parent::`/`ancestor::`/`..` into the
//! forward fragment (§6's up-moves extension); the baseline implements them
//! natively. Both must agree on arbitrary documents.

use proptest::prelude::*;
use xwq::core::{Engine, Strategy};
use xwq_xml::TreeBuilder;
use xwq_xpath::parse_xpath;

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

fn build_doc(ops: &[(u8, u8)]) -> xwq_xml::Document {
    let mut b = TreeBuilder::new();
    for n in NAMES {
        b.reserve(n);
    }
    b.open("a");
    let mut depth = 1usize;
    for &(pops, label) in ops {
        let pops = (pops as usize).min(depth - 1);
        for _ in 0..pops {
            b.close();
            depth -= 1;
        }
        b.open(NAMES[label as usize % NAMES.len()]);
        depth += 1;
    }
    for _ in 0..depth {
        b.close();
    }
    b.finish()
}

const QUERIES: &[&str] = &[
    "//a/b/parent::a",
    "//b/..",
    "//c/parent::b",
    "//c/parent::*",
    "//b[c]/parent::a/d",
    "//c/ancestor::a",
    "//c/ancestor::b",
    "//d/ancestor::*",
    "//b/../c",
    "//a/b/../b",
    "/a/b/parent::a",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rewritten_queries_match_native_baseline(
        ops in prop::collection::vec((0u8..4, 0u8..4), 0..120),
        qi in 0..QUERIES.len(),
    ) {
        let doc = build_doc(&ops);
        let engine = Engine::build(&doc);
        let query = QUERIES[qi];
        let compiled = engine
            .compile(query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        // The baseline evaluates the *original* path with its native
        // parent/ancestor support — an independent oracle for the rewrite.
        let original = parse_xpath(query).unwrap();
        let (expected, _) = xwq::baseline::evaluate_path(engine.index(), &original);
        for s in Strategy::ALL {
            let out = engine.run(&compiled, s);
            prop_assert_eq!(
                &out.nodes,
                &expected,
                "{} on `{}` over {}",
                s.name(),
                query,
                doc.to_xml()
            );
        }
    }
}

#[test]
fn unsupported_backward_shapes_error_cleanly() {
    let doc = xwq_xml::parse("<a><b/></a>").unwrap();
    let engine = Engine::build(&doc);
    for q in ["//a//b/parent::t", "//a/b/ancestor::t", "//a[ ../b ]"] {
        assert!(engine.compile(q).is_err(), "{q} should be rejected");
    }
}

#[test]
fn parent_of_root_selects_nothing() {
    let doc = xwq_xml::parse("<a><a><a/></a></a>").unwrap();
    let engine = Engine::build(&doc);
    assert_eq!(engine.query("/a/parent::a").unwrap(), Vec::<u32>::new());
    // But //a/parent::a finds real parents.
    assert_eq!(engine.query("//a/parent::a").unwrap(), vec![0, 1]);
}
